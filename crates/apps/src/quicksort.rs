//! Parallel quicksort (TreadMarks workload, paper §4).
//!
//! "It sorts an array of 250,000 integers using a parallel quicksort
//! algorithm until the partition size is less than a threshold of 1000
//! elements and then sorts locally using a bubblesort... This program
//! exhibits medium to coarse-grain sharing, but does little computation
//! between writes to shared memory... The array is partitioned
//! dynamically, so the lock binding the data to the task queue element is
//! rebound to a new range of addresses for every task created."
//!
//! Structure: a shared task queue under one lock, plus one lock per task
//! slot. Pushing a task rebinds the slot's lock to the task's array range;
//! popping it acquires the slot lock, which ships exactly that range.
//! Large tasks are partitioned in shared memory (compare-and-swap of
//! elements, as the paper describes); small tasks are copied out, sorted
//! locally and written back.

use std::sync::Arc;

use midway_core::{
    LockId, Midway, MidwayConfig, MidwayRun, NetMsg, Proc, RealConfig, RealError, SharedArray,
    SystemBuilder, SystemSpec, Transport,
};
use midway_sim::SplitMix64;

/// Cycles charged per comparison in the local bubble sort.
pub const CYCLES_PER_COMPARE: u64 = 6;
/// Cycles charged per partition-step comparison.
pub const CYCLES_PER_PARTITION_STEP: u64 = 8;

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Elements to sort (paper: 250,000).
    pub n: usize,
    /// Local-sort threshold (paper: 1000).
    pub threshold: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Params {
        Params {
            n: 250_000,
            threshold: 1_000,
            seed: 1234,
        }
    }

    /// A small configuration for tests.
    pub fn small() -> Params {
        Params {
            n: 1_500,
            threshold: 64,
            seed: 1234,
        }
    }

    fn max_tasks(&self) -> usize {
        // Each split consumes one task and produces two; leaves are at
        // least threshold/2 long in the worst split we generate.
        4 * self.n / self.threshold + 64
    }
}

/// Per-processor outcome.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Leaves this processor sorted.
    pub leaves_sorted: u64,
    /// Tasks this processor partitioned.
    pub tasks_split: u64,
    /// Global verification verdict (computed by processor 0).
    pub sorted_ok: Option<bool>,
}

struct Handles {
    data: SharedArray<i32>,
    /// Task descriptors: `[lo, hi]` per slot.
    qmeta: SharedArray<i32>,
    /// The task stack: slot indices, newest on top (depth-first order, so
    /// a pusher usually pops its own child — no data transfer at all).
    qstack: SharedArray<i32>,
    /// `[stack size, next slot, done]` counters.
    qctl: SharedArray<i32>,
    /// Per-leaf records for verification: `[lo, hi, min, max]`.
    qrec: SharedArray<i32>,
    /// Number of leaf records.
    qrec_count: SharedArray<i32>,
    scratch: SharedArray<i32>,
    qlock: LockId,
    /// Verification records live under their own lock so the hot queue
    /// lock's binding stays small.
    reclock: LockId,
    slot_locks: Vec<LockId>,
}

fn build(p: Params, _procs: usize) -> (Arc<SystemSpec>, Handles) {
    let t = p.max_tasks();
    let mut b = SystemBuilder::new();
    // Word-size elements with word-size cache lines: the paper's common
    // case for integer applications.
    let data = b.shared_array::<i32>("data", p.n, 1);
    let qmeta = b.shared_array::<i32>("qmeta", 2 * t, 1);
    let qstack = b.shared_array::<i32>("qstack", t, 1);
    let qctl = b.shared_array::<i32>("qctl", 3, 1);
    let qrec = b.shared_array::<i32>("qrec", 4 * t, 1);
    let qrec_count = b.shared_array::<i32>("qrec_count", 1, 1);
    // Per-processor progress counters: logically private, but left with
    // the default (shared) classification — each write pays the paper's
    // six-cycle misclassification penalty and nothing else.
    let scratch = b.private_array::<i32>("progress", 64);
    let qlock = b.lock(vec![
        qmeta.full_range(),
        qstack.full_range(),
        qctl.full_range(),
    ]);
    let reclock = b.lock(vec![qrec.full_range(), qrec_count.full_range()]);
    let slot_locks = (0..t).map(|_| b.lock(vec![])).collect();
    (
        b.build(),
        Handles {
            data,
            qmeta,
            qstack,
            qctl,
            qrec,
            qrec_count,
            scratch,
            qlock,
            reclock,
            slot_locks,
        },
    )
}

/// Runs parallel quicksort under `cfg` and verifies the result.
///
/// # Panics
///
/// Panics if the simulation fails.
pub fn run(cfg: MidwayConfig, p: Params) -> MidwayRun<Outcome> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run(cfg, &spec, |proc: &mut Proc| worker(proc, p, &h)).expect("quicksort failed")
}

/// Runs parallel quicksort over real sockets (`Midway::run_real`).
pub fn run_real(
    cfg: MidwayConfig,
    real: &RealConfig,
    p: Params,
) -> Result<MidwayRun<Outcome>, RealError> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run_real(cfg, real, &spec, |proc| worker(proc, p, &h))
}

fn worker<T: Transport<Msg = NetMsg>>(proc: &mut Proc<'_, T>, p: Params, h: &Handles) -> Outcome {
    let me = proc.id();
    let n = p.n as i32;

    // Processor 0 initializes the array under the root task's lock and
    // publishes the root task.
    if me == 0 {
        let root = 0usize;
        proc.acquire(h.slot_locks[root]);
        proc.rebind(h.slot_locks[root], vec![h.data.range(0..p.n)]);
        let mut rng = SplitMix64::new(p.seed);
        for i in 0..p.n {
            proc.write(&h.data, i, (rng.next_below(1 << 30)) as i32 - (1 << 29));
        }
        proc.release(h.slot_locks[root]);
        proc.acquire(h.qlock);
        proc.write(&h.qmeta, 0, 0);
        proc.write(&h.qmeta, 1, n);
        proc.write(&h.qstack, 0, 0);
        proc.write(&h.qctl, 0, 1); // stack size
        proc.write(&h.qctl, 1, 1); // next free slot
        proc.write(&h.qctl, 2, 0); // done
        proc.release(h.qlock);
    }

    let mut leaves_sorted = 0u64;
    let mut tasks_split = 0u64;
    let mut polls = 0i32;

    loop {
        // Misclassified private write: a progress counter on the shared
        // path (see Handles::scratch).
        polls += 1;
        proc.write(&h.scratch, (me * 8) % 64, polls);
        // Pop the newest task (or observe completion).
        proc.acquire(h.qlock);
        let size = proc.read(&h.qctl, 0);
        let done = proc.read(&h.qctl, 2);
        let task = if size > 0 {
            let slot = proc.read(&h.qstack, size as usize - 1) as usize;
            proc.write(&h.qctl, 0, size - 1);
            let lo = proc.read(&h.qmeta, slot * 2);
            let hi = proc.read(&h.qmeta, slot * 2 + 1);
            Some((slot, lo as usize, hi as usize))
        } else {
            None
        };
        proc.release(h.qlock);

        let Some((slot, lo, hi)) = task else {
            if done == n {
                break;
            }
            proc.idle(20_000); // backoff before re-polling
            continue;
        };

        // Acquire the task's data.
        proc.acquire(h.slot_locks[slot]);
        if hi - lo <= p.threshold {
            leaves_sorted += 1;
            local_sort_leaf(proc, p, h, slot, lo, hi);
        } else {
            tasks_split += 1;
            let mid = partition(proc, h, lo, hi);
            // Guard against degenerate pivots: keep both sides non-empty.
            let mid = mid.clamp(lo + 1, hi - 1);
            push_task(proc, h, slot, lo, mid);
            push_task(proc, h, slot, mid, hi);
        }
        proc.release(h.slot_locks[slot]);
    }

    // Verification by processor 0 once everything is done.
    let sorted_ok = (me == 0).then(|| verify(proc, p, h));
    Outcome {
        leaves_sorted,
        tasks_split,
        sorted_ok,
    }
}

/// Hoare-style partition through shared memory ("the inner loop does a
/// compare and swap of adjacent elements" — we follow the classic scheme;
/// every swap is two instrumented writes).
fn partition<T: Transport<Msg = NetMsg>>(
    proc: &mut Proc<'_, T>,
    h: &Handles,
    lo: usize,
    hi: usize,
) -> usize {
    let a = proc.read(&h.data, lo);
    let b = proc.read(&h.data, (lo + hi) / 2);
    let c = proc.read(&h.data, hi - 1);
    let pivot = a.max(b).min(a.min(b).max(c)); // median of three
    let mut i = lo;
    let mut j = hi;
    let mut steps = 0u64;
    loop {
        loop {
            steps += 1;
            if proc.read(&h.data, i) >= pivot {
                break;
            }
            i += 1;
        }
        loop {
            steps += 1;
            j -= 1;
            if proc.read(&h.data, j) <= pivot {
                break;
            }
        }
        if i >= j {
            proc.work(steps * CYCLES_PER_PARTITION_STEP);
            return j + 1;
        }
        let vi = proc.read(&h.data, i);
        let vj = proc.read(&h.data, j);
        proc.write(&h.data, i, vj);
        proc.write(&h.data, j, vi);
        i += 1;
    }
}

/// Copies the leaf out, bubble-sorts it locally (charging the compare
/// cost), writes it back, and records it for verification.
fn local_sort_leaf<T: Transport<Msg = NetMsg>>(
    proc: &mut Proc<'_, T>,
    _p: Params,
    h: &Handles,
    _slot: usize,
    lo: usize,
    hi: usize,
) {
    let mut buf = proc.read_vec(&h.data, lo..hi);
    let mut compares = 0u64;
    // Bubble sort with early exit, as the paper's local sort.
    let mut end = buf.len();
    while end > 1 {
        let mut last_swap = 0;
        for k in 1..end {
            compares += 1;
            if buf[k - 1] > buf[k] {
                buf.swap(k - 1, k);
                last_swap = k;
            }
        }
        end = last_swap;
    }
    proc.work(compares * CYCLES_PER_COMPARE);
    proc.write_slice(&h.data, lo, &buf);

    let min = *buf.first().expect("leaf is non-empty");
    let max = *buf.last().expect("leaf is non-empty");
    proc.acquire(h.reclock);
    let rec = proc.read(&h.qrec_count, 0) as usize;
    proc.write(&h.qrec, rec * 4, lo as i32);
    proc.write(&h.qrec, rec * 4 + 1, hi as i32);
    proc.write(&h.qrec, rec * 4 + 2, min);
    proc.write(&h.qrec, rec * 4 + 3, max);
    proc.write(&h.qrec_count, 0, rec as i32 + 1);
    proc.release(h.reclock);
    proc.acquire(h.qlock);
    let done = proc.read(&h.qctl, 2);
    proc.write(&h.qctl, 2, done + (hi - lo) as i32);
    proc.release(h.qlock);
}

/// Publishes a child task: rebind its slot lock to the range, then make
/// the descriptor visible under the queue lock.
fn push_task<T: Transport<Msg = NetMsg>>(
    proc: &mut Proc<'_, T>,
    h: &Handles,
    _parent: usize,
    lo: usize,
    hi: usize,
) {
    // Atomically reserve a slot id (slots are never recycled, so every
    // task has its own lock, rebound exactly once).
    proc.acquire(h.qlock);
    let slot = proc.read(&h.qctl, 1) as usize;
    assert!(slot < h.slot_locks.len(), "task queue overflow");
    proc.write(&h.qctl, 1, slot as i32 + 1);
    proc.release(h.qlock);
    // Rebind the fresh slot lock to the child's range *before* publishing —
    // the descriptor is invisible, so this acquire is uncontended and
    // cannot deadlock against the held parent lock. The pusher's cache
    // holds the partitioned data, so it becomes the owner of record the
    // popper will fetch from.
    proc.acquire(h.slot_locks[slot]);
    proc.rebind(h.slot_locks[slot], vec![h.data.range(lo..hi)]);
    proc.release(h.slot_locks[slot]);
    // Publish: descriptor first, then the stack entry.
    proc.acquire(h.qlock);
    proc.write(&h.qmeta, slot * 2, lo as i32);
    proc.write(&h.qmeta, slot * 2 + 1, hi as i32);
    let size = proc.read(&h.qctl, 0);
    proc.write(&h.qstack, size as usize, slot as i32);
    proc.write(&h.qctl, 0, size + 1);
    proc.release(h.qlock);
}

/// Processor 0's global check: leaf records must tile `0..n`, with
/// leaf-local sortedness already guaranteed and boundaries monotone.
fn verify<T: Transport<Msg = NetMsg>>(proc: &mut Proc<'_, T>, p: Params, h: &Handles) -> bool {
    proc.acquire(h.reclock);
    let count = proc.read(&h.qrec_count, 0) as usize;
    let mut recs: Vec<(i32, i32, i32, i32)> = (0..count)
        .map(|r| {
            (
                proc.read(&h.qrec, r * 4),
                proc.read(&h.qrec, r * 4 + 1),
                proc.read(&h.qrec, r * 4 + 2),
                proc.read(&h.qrec, r * 4 + 3),
            )
        })
        .collect();
    proc.release(h.reclock);
    recs.sort_unstable();
    let mut cursor = 0i32;
    let mut prev_max = i32::MIN;
    for (lo, hi, min, max) in recs {
        if lo != cursor || min < prev_max || max < min {
            return false;
        }
        cursor = hi;
        prev_max = max;
    }
    cursor == p.n as i32
}

#[cfg(test)]
mod tests {
    use super::*;
    use midway_core::BackendKind;

    fn check(run: &MidwayRun<Outcome>, p: Params) {
        assert_eq!(run.results[0].sorted_ok, Some(true), "not sorted");
        let leaves: u64 = run.results.iter().map(|o| o.leaves_sorted).sum();
        assert!(leaves >= (p.n / p.threshold) as u64 / 2, "too few leaves");
    }

    #[test]
    fn sorts_on_every_backend() {
        for backend in [
            BackendKind::Rt,
            BackendKind::Vm,
            BackendKind::Blast,
            BackendKind::TwinAll,
        ] {
            let p = Params::small();
            let run = run(MidwayConfig::new(4, backend), p);
            check(&run, p);
        }
    }

    #[test]
    fn sorts_standalone() {
        let p = Params::small();
        let run = run(MidwayConfig::standalone(), p);
        check(&run, p);
        assert_eq!(run.messages, 0);
    }

    #[test]
    fn work_is_actually_distributed() {
        let p = Params::small();
        let run = run(MidwayConfig::new(4, BackendKind::Rt), p);
        let busy = run
            .results
            .iter()
            .filter(|o| o.leaves_sorted + o.tasks_split > 0)
            .count();
        assert!(busy >= 2, "only {busy} processors did any sorting");
    }

    #[test]
    fn rebinding_causes_vm_full_sends() {
        // The paper: "the incarnation number is incremented which causes
        // all data bound to the lock to be sent without performing a diff"
        // — under VM, rebound locks ship full data.
        let p = Params::small();
        let run = run(MidwayConfig::new(4, BackendKind::Vm), p);
        let fulls: u64 = run.counters.iter().map(|c| c.full_data_sends).sum();
        assert!(fulls > 0, "rebinding should force full-data sends");
    }
}
