//! High-churn task queue: the service family's synchronization-bound
//! workload.
//!
//! Every client session contributes one *root* task with a budget of
//! `ops_per_client` tasks; processing a task spends its work charge,
//! writes a self-describing result record, and splits the remaining
//! budget across up to `branch` children pushed back on the shared
//! queue. The tree shape is therefore fixed by [`ServiceParams`] —
//! exactly `procs × clients × ops_per_client` tasks run, no matter which
//! processor pops which — while *placement* is fully dynamic, so the
//! queue lock and the per-task slot locks churn constantly. Per-task
//! work is Zipf-skewed: most tasks are cheap, a few are stragglers.
//!
//! Like quicksort (the paper's dynamic workload), each task slot has its
//! own lock, rebound to the task's result range when the task is pushed;
//! popping the task ships exactly that range. A `write_pct` fraction of
//! tasks additionally appends to a global audit log under a single hot
//! lock — the op-mix knob turns into direct lock contention.

use std::sync::Arc;

use midway_core::{
    BarrierId, LockId, Midway, MidwayConfig, MidwayRun, NetMsg, Proc, RealConfig, RealError,
    SharedArray, SystemBuilder, SystemSpec, Transport,
};

use crate::service::{mix64, ServiceParams, Zipf};

/// Ranks of the Zipf-skewed work distribution.
const WORK_RANKS: usize = 32;
/// Salt for the deterministic "is this task audited" predicate.
const AUDIT_SALT: u64 = 0xA0D1_7C47;

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Client count (roots per processor), per-root task budget
    /// (`ops_per_client`), work skew, audit mix, base work, seed.
    pub svc: ServiceParams,
    /// Maximum children per task split.
    pub branch: usize,
    /// Result words per task.
    pub result_words: usize,
}

impl Params {
    /// A production-shaped configuration.
    pub fn paper() -> Params {
        Params {
            svc: ServiceParams {
                ops_per_client: 40,
                ..ServiceParams::paper()
            },
            branch: 3,
            result_words: 2,
        }
    }

    /// A tiny configuration for tests.
    pub fn small() -> Params {
        Params {
            svc: ServiceParams {
                ops_per_client: 12,
                ..ServiceParams::small()
            },
            branch: 2,
            result_words: 2,
        }
    }

    /// Total tasks a run processes (exact, by construction).
    pub fn total_tasks(&self, procs: usize) -> usize {
        procs * self.svc.ops_per_proc()
    }

    /// Whether task `id` appends to the audit log.
    fn audited(&self, id: u64) -> bool {
        mix64(self.svc.seed ^ AUDIT_SALT, id) % 100 < u64::from(self.svc.write_pct)
    }

    /// The Zipf-skewed work charge for task `id`.
    fn work_for(&self, id: u64, zipf: &Zipf) -> u64 {
        let mut rng = midway_sim::SplitMix64::new(mix64(self.svc.seed, id));
        self.svc.think_cycles * (zipf.sample(&mut rng) as u64 + 1)
    }
}

/// Per-processor outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Outcome {
    /// Tasks this processor processed.
    pub processed: u64,
    /// Children this processor spawned.
    pub spawned: u64,
    /// Audit-log appends this processor performed.
    pub audited: u64,
    /// Global verification verdict (computed by processor 0).
    pub queue_ok: Option<bool>,
}

struct Handles {
    /// Per-task budget, written when the task is pushed (slot index = id).
    tmeta: SharedArray<u64>,
    /// Per-task result records (`result_words` each).
    results: SharedArray<u64>,
    /// The task stack: slot ids, newest on top.
    qstack: SharedArray<u64>,
    /// `[stack size, next free slot, tasks done]`.
    qctl: SharedArray<u64>,
    /// `[audit count, audit xor]` under its own hot lock.
    audit: SharedArray<u64>,
    /// Per-processor `[processed, spawned]` tallies.
    stats: SharedArray<u64>,
    qlock: LockId,
    audit_lock: LockId,
    slot_locks: Vec<LockId>,
    done: BarrierId,
}

fn build(p: Params, procs: usize) -> (Arc<SystemSpec>, Handles) {
    let t = p.total_tasks(procs);
    let mut b = SystemBuilder::new();
    let tmeta = b.shared_array::<u64>("tmeta", t, 1);
    let results = b.shared_array::<u64>("results", t * p.result_words, 1);
    let qstack = b.shared_array::<u64>("qstack", t, 1);
    let qctl = b.shared_array::<u64>("qctl", 3, 1);
    let audit = b.shared_array::<u64>("audit", 2, 1);
    let stats = b.shared_array::<u64>("stats", procs * 2, 1);
    let qlock = b.lock(vec![
        tmeta.full_range(),
        qstack.full_range(),
        qctl.full_range(),
    ]);
    let audit_lock = b.lock(vec![audit.full_range()]);
    let slot_locks = (0..t).map(|_| b.lock(vec![])).collect();
    let done = b.barrier_partitioned(
        vec![stats.full_range()],
        (0..procs)
            .map(|q| vec![stats.range(q * 2..q * 2 + 2)])
            .collect(),
    );
    (
        b.build(),
        Handles {
            tmeta,
            results,
            qstack,
            qctl,
            audit,
            stats,
            qlock,
            audit_lock,
            slot_locks,
            done,
        },
    )
}

/// Runs the task queue under `cfg` and verifies the result.
///
/// # Panics
///
/// Panics if the simulation fails (deadlock or processor panic).
pub fn run(cfg: MidwayConfig, p: Params) -> MidwayRun<Outcome> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run(cfg, &spec, |proc: &mut Proc| worker(proc, p, &h))
        .expect("taskqueue simulation failed")
}

/// Runs the task queue over real sockets (`Midway::run_real`).
pub fn run_real(
    cfg: MidwayConfig,
    real: &RealConfig,
    p: Params,
) -> Result<MidwayRun<Outcome>, RealError> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run_real(cfg, real, &spec, |proc| worker(proc, p, &h))
}

/// Reserves a fresh slot, rebinds its lock to the task's result range,
/// and publishes the task (budget first, stack entry last).
fn push_task<T: Transport<Msg = NetMsg>>(
    proc: &mut Proc<'_, T>,
    p: Params,
    h: &Handles,
    budget: u64,
) -> u64 {
    proc.acquire(h.qlock);
    let id = proc.read(&h.qctl, 1);
    assert!((id as usize) < h.slot_locks.len(), "task queue overflow");
    proc.write(&h.qctl, 1, id + 1);
    proc.write(&h.tmeta, id as usize, budget);
    proc.release(h.qlock);
    // Rebind before publishing: the slot is invisible, so this acquire is
    // uncontended, and the pusher becomes the owner of record.
    let r = id as usize * p.result_words;
    proc.acquire(h.slot_locks[id as usize]);
    proc.rebind(
        h.slot_locks[id as usize],
        vec![h.results.range(r..r + p.result_words)],
    );
    proc.release(h.slot_locks[id as usize]);
    proc.acquire(h.qlock);
    let size = proc.read(&h.qctl, 0);
    proc.write(&h.qstack, size as usize, id);
    proc.write(&h.qctl, 0, size + 1);
    proc.release(h.qlock);
    id
}

fn worker<T: Transport<Msg = NetMsg>>(proc: &mut Proc<'_, T>, p: Params, h: &Handles) -> Outcome {
    let me = proc.id();
    let total = p.total_tasks(proc.procs()) as u64;
    let zipf = Zipf::new(WORK_RANKS, p.svc.skew);
    let mut out = Outcome {
        processed: 0,
        spawned: 0,
        audited: 0,
        queue_ok: None,
    };

    // Every processor seeds one root per client session.
    for _ in 0..p.svc.clients {
        let id = push_task(proc, p, h, p.svc.ops_per_client as u64);
        out.spawned += 1;
        let _ = id;
    }

    loop {
        proc.acquire(h.qlock);
        let size = proc.read(&h.qctl, 0);
        let done = proc.read(&h.qctl, 2);
        let task = if size > 0 {
            let id = proc.read(&h.qstack, size as usize - 1);
            proc.write(&h.qctl, 0, size - 1);
            let budget = proc.read(&h.tmeta, id as usize);
            Some((id, budget))
        } else {
            None
        };
        proc.release(h.qlock);

        let Some((id, budget)) = task else {
            if done == total {
                break;
            }
            proc.idle(20_000); // backoff before re-polling
            continue;
        };

        // Process: the slot lock ships exactly this task's result range.
        proc.acquire(h.slot_locks[id as usize]);
        let r = id as usize * p.result_words;
        for w in 0..p.result_words {
            proc.write(&h.results, r + w, mix64(id, budget ^ w as u64));
        }
        proc.release(h.slot_locks[id as usize]);
        proc.work(p.work_for(id, &zipf));
        out.processed += 1;

        if p.audited(id) {
            proc.acquire(h.audit_lock);
            let n = proc.read(&h.audit, 0);
            let x = proc.read(&h.audit, 1);
            proc.write(&h.audit, 0, n + 1);
            proc.write(&h.audit, 1, x ^ mix64(id, budget));
            proc.release(h.audit_lock);
            out.audited += 1;
        }

        // Split the remaining budget across up to `branch` children.
        let mut rem = budget - 1;
        let mut share = rem.div_ceil(p.branch as u64).max(1);
        while rem > 0 {
            share = share.min(rem);
            push_task(proc, p, h, share);
            out.spawned += 1;
            rem -= share;
        }

        proc.acquire(h.qlock);
        let d = proc.read(&h.qctl, 2);
        proc.write(&h.qctl, 2, d + 1);
        proc.release(h.qlock);
    }

    proc.write(&h.stats, me * 2, out.processed);
    proc.write(&h.stats, me * 2 + 1, out.spawned);
    proc.barrier(h.done);

    out.queue_ok = (me == 0).then(|| verify(proc, p, h, total));
    out
}

/// Processor 0's global audit: exactly `total` tasks ran, every result
/// record matches its task, and the audit log matches the deterministic
/// audit set.
fn verify<T: Transport<Msg = NetMsg>>(
    proc: &mut Proc<'_, T>,
    p: Params,
    h: &Handles,
    total: u64,
) -> bool {
    let mut processed = 0u64;
    let mut spawned = 0u64;
    for q in 0..proc.procs() {
        processed += proc.read(&h.stats, q * 2);
        spawned += proc.read(&h.stats, q * 2 + 1);
    }
    proc.acquire_shared(h.qlock);
    let next = proc.read(&h.qctl, 1);
    let done = proc.read(&h.qctl, 2);
    let budgets: Vec<u64> = (0..total as usize)
        .map(|id| proc.read(&h.tmeta, id))
        .collect();
    proc.release_shared(h.qlock);
    if !(next == total && done == total && processed == total && spawned == total) {
        return false;
    }

    let mut want_audits = 0u64;
    let mut want_xor = 0u64;
    let mut results_ok = true;
    for (id, &budget) in budgets.iter().enumerate() {
        let id = id as u64;
        if budget == 0 {
            return false;
        }
        if p.audited(id) {
            want_audits += 1;
            want_xor ^= mix64(id, budget);
        }
        proc.acquire_shared(h.slot_locks[id as usize]);
        for w in 0..p.result_words {
            let got = proc.read(&h.results, id as usize * p.result_words + w);
            results_ok &= got == mix64(id, budget ^ w as u64);
        }
        proc.release_shared(h.slot_locks[id as usize]);
    }

    proc.acquire_shared(h.audit_lock);
    let audits = proc.read(&h.audit, 0);
    let xor = proc.read(&h.audit, 1);
    proc.release_shared(h.audit_lock);
    results_ok && audits == want_audits && xor == want_xor
}

/// Whether an outcome set passes verification.
pub fn verified(outcomes: &[Outcome]) -> bool {
    outcomes[0].queue_ok == Some(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use midway_core::BackendKind;

    #[test]
    fn churns_and_verifies_on_every_backend() {
        for backend in [
            BackendKind::Rt,
            BackendKind::Vm,
            BackendKind::Blast,
            BackendKind::TwinAll,
        ] {
            let p = Params::small();
            let run = run(MidwayConfig::new(3, backend), p);
            assert!(verified(&run.results), "{backend:?}: {:?}", run.results);
            let processed: u64 = run.results.iter().map(|o| o.processed).sum();
            assert_eq!(processed, p.total_tasks(3) as u64, "exact task count");
        }
    }

    #[test]
    fn work_is_distributed_across_processors() {
        let run = run(MidwayConfig::new(4, BackendKind::Rt), Params::small());
        let busy = run.results.iter().filter(|o| o.processed > 0).count();
        assert!(busy >= 2, "only {busy} processors processed tasks");
    }

    #[test]
    fn standalone_processes_the_exact_task_count() {
        let p = Params::small();
        let run = run(MidwayConfig::standalone(), p);
        assert!(verified(&run.results));
        assert_eq!(run.results[0].processed, p.total_tasks(1) as u64);
        assert_eq!(run.messages, 0);
    }

    #[test]
    fn rebinding_slot_locks_causes_vm_full_sends() {
        let run = run(MidwayConfig::new(4, BackendKind::Vm), Params::small());
        let fulls: u64 = run.counters.iter().map(|c| c.full_data_sends).sum();
        assert!(fulls > 0, "slot rebinds should force full-data sends");
    }
}
