//! A uniform driver over the five applications, used by the benchmark
//! harnesses to regenerate the paper's tables and figures.

use midway_core::{
    Counters, LinkStats, MidwayConfig, MidwayRun, RealConfig, RealError, SpecBlueprint, TraceOp,
    VirtualTime,
};

use crate::{cholesky, kvstore, matmul, quicksort, socialgraph, sor, taskqueue, water};

/// Which benchmark application to run.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum AppKind {
    /// SPLASH water: medium-grained.
    Water,
    /// TreadMarks quicksort: medium/coarse, rebinding-heavy.
    Quicksort,
    /// Matrix multiply: coarse-grained, VM's best case.
    Matmul,
    /// Red-black SOR: medium-grained edge sharing.
    Sor,
    /// Sparse Cholesky: fine-grained.
    Cholesky,
    /// Service family: sharded KV store, Zipfian keys, read-mostly.
    KvStore,
    /// Service family: social-graph posts/follows/timelines.
    SocialGraph,
    /// Service family: high-churn task queue.
    TaskQueue,
}

impl AppKind {
    /// The paper's five applications in its presentation order (the
    /// Table 2 set — service apps are listed by [`AppKind::service`]).
    pub fn all() -> [AppKind; 5] {
        [
            AppKind::Water,
            AppKind::Quicksort,
            AppKind::Matmul,
            AppKind::Sor,
            AppKind::Cholesky,
        ]
    }

    /// The service-scale workload family.
    pub fn service() -> [AppKind; 3] {
        [AppKind::KvStore, AppKind::SocialGraph, AppKind::TaskQueue]
    }

    /// Every application: the paper set followed by the service family.
    pub fn every() -> [AppKind; 8] {
        [
            AppKind::Water,
            AppKind::Quicksort,
            AppKind::Matmul,
            AppKind::Sor,
            AppKind::Cholesky,
            AppKind::KvStore,
            AppKind::SocialGraph,
            AppKind::TaskQueue,
        ]
    }

    /// The application's name (the paper's, for the Table 2 set).
    pub fn label(self) -> &'static str {
        match self {
            AppKind::Water => "water",
            AppKind::Quicksort => "quicksort",
            AppKind::Matmul => "matrix",
            AppKind::Sor => "sor",
            AppKind::Cholesky => "cholesky",
            AppKind::KvStore => "kvstore",
            AppKind::SocialGraph => "socialgraph",
            AppKind::TaskQueue => "taskqueue",
        }
    }

    /// Whether the application's final memory is independent of lock
    /// arbitration order, making per-processor store digests directly
    /// comparable across transports.
    ///
    /// Only the strictly barrier-phased applications qualify: every
    /// processor writes a fixed partition, so any execution reaching the
    /// final barrier leaves the same bytes. That is `sor` and `matrix`.
    /// The rest depend on arbitration order: `water`'s flush phase sums
    /// per-molecule force contributions under a lock, and floating-point
    /// addition does not associate, so the order processors win that lock
    /// changes the final bits; `quicksort` places tasks dynamically, so
    /// which processor sorts which span (and thus whose memory holds it)
    /// follows grant order; `cholesky`'s `cmod` interleavings round
    /// differently for the same reason as water. The service apps are
    /// lock-arbitrated by design (their *logical* content is audited
    /// instead), so none qualify.
    pub fn lock_order_independent(self) -> bool {
        matches!(self, AppKind::Sor | AppKind::Matmul)
    }
}

/// Workload scale.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// The paper's input sizes (run these under `--release`).
    Paper,
    /// Roughly quarter-size inputs for quicker sweeps.
    Medium,
    /// Tiny inputs for tests.
    Small,
    /// Scaled-up inputs for the 64–512 processor sweep. Sized so every
    /// application still partitions at those counts: sor's stripes need at
    /// least two rows each (8192 rows ⇒ up to 4096 processors), matmul
    /// needs a row per processor, quicksort needs enough tasks to keep
    /// hundreds of workers busy.
    Datacenter,
}

impl Scale {
    /// A short label for file names and trace metadata.
    pub fn label(self) -> &'static str {
        match self {
            Scale::Paper => "paper",
            Scale::Medium => "medium",
            Scale::Small => "small",
            Scale::Datacenter => "dc",
        }
    }
}

/// Backend-erased outcome of one application run.
#[derive(Clone, Debug)]
pub struct AppOutcome {
    /// Which application ran.
    pub kind: AppKind,
    /// The configuration used.
    pub cfg: MidwayConfig,
    /// Per-processor counters (Table 2's raw data).
    pub counters: Vec<Counters>,
    /// Finish time (max processor clock).
    pub finish_time: VirtualTime,
    /// Execution time in modelled seconds.
    pub exec_secs: f64,
    /// Application data transferred cluster-wide, in MB.
    pub data_mb_total: f64,
    /// Application data sent per processor, in KB (Table 2's row).
    pub data_kb_per_proc: f64,
    /// Messages delivered.
    pub messages: u64,
    /// Whether the application verified its own output.
    pub verified: bool,
    /// Per-processor FNV-1a digests of the final local memory content.
    pub store_digests: Vec<u64>,
    /// Per-processor reliable-channel activity (all zeros when the run's
    /// fault plan is disabled and messages travel unframed).
    pub link: Vec<LinkStats>,
    /// Per-processor recorded operation streams (empty unless the run was
    /// configured with `MidwayConfig::record`).
    pub traces: Vec<Vec<TraceOp>>,
    /// The system blueprint, captured when recording.
    pub blueprint: Option<SpecBlueprint>,
    /// The dynamic checker's report (present when the run was configured
    /// with `MidwayConfig::check`).
    pub check: Option<midway_core::CheckReport>,
    /// Host-side scheduler counters (event-engine perf attribution; all
    /// zeros on real transports).
    pub sched: midway_core::SchedStats,
    /// Per-processor detector buffer-pool `(hits, misses)` — host-side
    /// allocation attribution, never part of the modelled cost.
    pub alloc: Vec<(u64, u64)>,
}

impl AppOutcome {
    /// Cluster-wide reliable-channel totals (all zeros on a trusted
    /// network).
    pub fn link_totals(&self) -> LinkStats {
        let mut total = LinkStats::default();
        for l in &self.link {
            total.add(l);
        }
        total
    }

    /// Packages any finished run as an outcome — e.g. a trace replay,
    /// which carries no application results of its own; the caller passes
    /// the `verified` flag recorded with the trace.
    pub fn from_run<R>(kind: AppKind, run: MidwayRun<R>, verified: bool) -> AppOutcome {
        erase(kind, run, verified)
    }
}

fn erase<R>(kind: AppKind, run: MidwayRun<R>, verified: bool) -> AppOutcome {
    AppOutcome {
        kind,
        cfg: run.cfg,
        exec_secs: run.exec_secs(),
        data_mb_total: run.data_mb_total(),
        data_kb_per_proc: run.data_kb_per_proc(),
        finish_time: run.finish_time,
        messages: run.messages,
        counters: run.counters,
        verified,
        store_digests: run.store_digests,
        link: run.link,
        traces: run.traces,
        blueprint: run.blueprint,
        check: run.check,
        sched: run.sched,
        alloc: run.alloc,
    }
}

/// The scale-adjusted parameters for each app (shared by the simulated and
/// real drivers so the two run identical workloads).
fn water_params(scale: Scale) -> water::Params {
    match scale {
        Scale::Paper => water::Params::paper(),
        Scale::Medium => water::Params {
            molecules: 125,
            steps: 3,
        },
        Scale::Small => water::Params::small(),
        Scale::Datacenter => water::Params {
            molecules: 1728,
            steps: 2,
        },
    }
}

fn quicksort_params(scale: Scale) -> quicksort::Params {
    match scale {
        Scale::Paper => quicksort::Params::paper(),
        Scale::Medium => quicksort::Params {
            n: 60_000,
            threshold: 500,
            seed: 1234,
        },
        Scale::Small => quicksort::Params::small(),
        Scale::Datacenter => quicksort::Params {
            n: 10_000_000,
            threshold: 1000,
            seed: 1234,
        },
    }
}

fn matmul_params(scale: Scale) -> matmul::Params {
    match scale {
        Scale::Paper => matmul::Params::paper(),
        Scale::Medium => matmul::Params { n: 192, seed: 42 },
        Scale::Small => matmul::Params::small(),
        Scale::Datacenter => matmul::Params { n: 1024, seed: 42 },
    }
}

fn sor_params(scale: Scale) -> sor::Params {
    match scale {
        Scale::Paper => sor::Params::paper(),
        Scale::Medium => sor::Params {
            rows: 400,
            cols: 400,
            iters: 10,
            seed: 7,
        },
        Scale::Small => sor::Params::small(),
        Scale::Datacenter => sor::Params {
            rows: 8192,
            cols: 8192,
            iters: 2,
            seed: 7,
        },
    }
}

fn cholesky_params(scale: Scale) -> cholesky::Params {
    match scale {
        Scale::Paper => cholesky::Params::paper(),
        Scale::Medium => cholesky::Params { side: 16 },
        Scale::Small => cholesky::Params::small(),
        Scale::Datacenter => cholesky::Params { side: 40 },
    }
}

fn kvstore_params(scale: Scale) -> kvstore::Params {
    use crate::service::ServiceParams;
    match scale {
        Scale::Paper => kvstore::Params::paper(),
        Scale::Medium => kvstore::Params {
            svc: ServiceParams {
                clients: 4,
                ops_per_client: 100,
                ..ServiceParams::paper()
            },
            keys: 1024,
            shards: 16,
            vwords: 4,
        },
        Scale::Small => kvstore::Params::small(),
        Scale::Datacenter => kvstore::Params {
            svc: ServiceParams {
                clients: 16,
                ops_per_client: 150,
                ..ServiceParams::paper()
            },
            keys: 16_384,
            shards: 128,
            vwords: 4,
        },
    }
}

fn socialgraph_params(scale: Scale) -> socialgraph::Params {
    use crate::service::ServiceParams;
    match scale {
        Scale::Paper => socialgraph::Params::paper(),
        Scale::Medium => socialgraph::Params {
            svc: ServiceParams {
                clients: 4,
                ops_per_client: 100,
                ..ServiceParams::paper()
            },
            nodes: 512,
            shards: 16,
            max_degree: 16,
            payload_words: 3,
        },
        Scale::Small => socialgraph::Params::small(),
        Scale::Datacenter => socialgraph::Params {
            svc: ServiceParams {
                clients: 16,
                ops_per_client: 150,
                ..ServiceParams::paper()
            },
            nodes: 8192,
            shards: 128,
            max_degree: 32,
            payload_words: 3,
        },
    }
}

fn taskqueue_params(scale: Scale) -> taskqueue::Params {
    use crate::service::ServiceParams;
    match scale {
        Scale::Paper => taskqueue::Params::paper(),
        Scale::Medium => taskqueue::Params {
            svc: ServiceParams {
                clients: 4,
                ops_per_client: 25,
                ..ServiceParams::paper()
            },
            branch: 3,
            result_words: 2,
        },
        Scale::Small => taskqueue::Params::small(),
        Scale::Datacenter => taskqueue::Params {
            svc: ServiceParams {
                clients: 8,
                ops_per_client: 30,
                ..ServiceParams::paper()
            },
            branch: 4,
            result_words: 2,
        },
    }
}

/// Runs `kind` at `scale` under `cfg`, with verification.
///
/// # Panics
///
/// Panics if the simulation itself fails (deadlock / processor panic);
/// verification failures are reported in the outcome instead.
pub fn run_app(kind: AppKind, cfg: MidwayConfig, scale: Scale) -> AppOutcome {
    match kind {
        AppKind::Water => {
            let run = water::run(cfg, water_params(scale));
            let ok = water::verified(&run.results);
            erase(kind, run, ok)
        }
        AppKind::Quicksort => {
            let run = quicksort::run(cfg, quicksort_params(scale));
            let ok = run.results[0].sorted_ok == Some(true);
            erase(kind, run, ok)
        }
        AppKind::Matmul => {
            let run = matmul::run(cfg, matmul_params(scale));
            let ok = matmul::verified(&run.results);
            erase(kind, run, ok)
        }
        AppKind::Sor => {
            let run = sor::run(cfg, sor_params(scale));
            let ok = sor::verified(&run.results);
            erase(kind, run, ok)
        }
        AppKind::Cholesky => {
            let run = cholesky::run(cfg, cholesky_params(scale));
            let ok = cholesky::verified(&run.results);
            erase(kind, run, ok)
        }
        AppKind::KvStore => {
            let run = kvstore::run(cfg, kvstore_params(scale));
            let ok = kvstore::verified(&run.results);
            erase(kind, run, ok)
        }
        AppKind::SocialGraph => {
            let run = socialgraph::run(cfg, socialgraph_params(scale));
            let ok = socialgraph::verified(&run.results);
            erase(kind, run, ok)
        }
        AppKind::TaskQueue => {
            let run = taskqueue::run(cfg, taskqueue_params(scale));
            let ok = taskqueue::verified(&run.results);
            erase(kind, run, ok)
        }
    }
}

/// Runs `kind` at `scale` under `cfg` over real sockets, with
/// verification. The workload is identical to [`run_app`]'s at the same
/// scale; only the transport differs.
///
/// # Errors
///
/// Returns [`RealError`] when the run fails (socket error, violation,
/// panic, watchdog); verification failures are reported in the outcome.
pub fn run_app_real(
    kind: AppKind,
    cfg: MidwayConfig,
    real: &RealConfig,
    scale: Scale,
) -> Result<AppOutcome, RealError> {
    Ok(match kind {
        AppKind::Water => {
            let run = water::run_real(cfg, real, water_params(scale))?;
            let ok = water::verified(&run.results);
            erase(kind, run, ok)
        }
        AppKind::Quicksort => {
            let run = quicksort::run_real(cfg, real, quicksort_params(scale))?;
            let ok = run.results[0].sorted_ok == Some(true);
            erase(kind, run, ok)
        }
        AppKind::Matmul => {
            let run = matmul::run_real(cfg, real, matmul_params(scale))?;
            let ok = matmul::verified(&run.results);
            erase(kind, run, ok)
        }
        AppKind::Sor => {
            let run = sor::run_real(cfg, real, sor_params(scale))?;
            let ok = sor::verified(&run.results);
            erase(kind, run, ok)
        }
        AppKind::Cholesky => {
            let run = cholesky::run_real(cfg, real, cholesky_params(scale))?;
            let ok = cholesky::verified(&run.results);
            erase(kind, run, ok)
        }
        AppKind::KvStore => {
            let run = kvstore::run_real(cfg, real, kvstore_params(scale))?;
            let ok = kvstore::verified(&run.results);
            erase(kind, run, ok)
        }
        AppKind::SocialGraph => {
            let run = socialgraph::run_real(cfg, real, socialgraph_params(scale))?;
            let ok = socialgraph::verified(&run.results);
            erase(kind, run, ok)
        }
        AppKind::TaskQueue => {
            let run = taskqueue::run_real(cfg, real, taskqueue_params(scale))?;
            let ok = taskqueue::verified(&run.results);
            erase(kind, run, ok)
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use midway_core::BackendKind;

    #[test]
    fn driver_runs_and_verifies_every_app() {
        for kind in AppKind::all() {
            let out = run_app(kind, MidwayConfig::new(2, BackendKind::Rt), Scale::Small);
            assert!(out.verified, "{kind:?} failed verification");
            assert!(out.exec_secs > 0.0);
        }
    }

    #[test]
    fn driver_runs_and_verifies_every_service_app() {
        for kind in AppKind::service() {
            let out = run_app(kind, MidwayConfig::new(2, BackendKind::Rt), Scale::Small);
            assert!(out.verified, "{kind:?} failed verification");
            assert!(out.exec_secs > 0.0);
        }
    }

    #[test]
    fn labels_match_the_paper() {
        assert_eq!(AppKind::Water.label(), "water");
        assert_eq!(AppKind::all().len(), 5);
        assert_eq!(AppKind::every().len(), 8);
        assert!(AppKind::service()
            .iter()
            .all(|k| !k.lock_order_independent()));
    }
}
