//! Red-black successive over-relaxation (paper §4).
//!
//! "The program iteratively computes new values for each element in a
//! 1000×1000 matrix of floating point values... Only data at the edges of
//! each partition are shared between processors. The interior elements are
//! initialized to random values to maximize the changed elements per
//! iteration. The program runs for 25 iterations and exhibits medium-grain
//! sharing."
//!
//! The grid is partitioned into row stripes. Interior rows are private
//! (annotated so, as the paper's programmer would): they live in ordinary
//! local memory and their writes are not instrumented. Each stripe's first
//! and last rows are shared: after updating them, the owner publishes the
//! changed elements to per-processor edge arrays bound to the phase
//! barrier, and neighbours read them from there.

use std::sync::Arc;

use midway_core::{
    BarrierId, Midway, MidwayConfig, MidwayRun, NetMsg, Proc, RealConfig, RealError, SharedArray,
    SystemBuilder, SystemSpec, Transport,
};
use midway_sim::SplitMix64;

/// Cycles charged per element update (4 loads, multiply, adds, store).
pub const CYCLES_PER_UPDATE: u64 = 20;

/// Problem parameters.
#[derive(Clone, Copy, Debug)]
pub struct Params {
    /// Grid rows (paper: 1000).
    pub rows: usize,
    /// Grid columns (paper: 1000).
    pub cols: usize,
    /// Iterations (paper: 25); each has a red and a black phase.
    pub iters: usize,
    /// Workload seed.
    pub seed: u64,
}

impl Params {
    /// The paper's configuration.
    pub fn paper() -> Params {
        Params {
            rows: 1000,
            cols: 1000,
            iters: 25,
            seed: 7,
        }
    }

    /// A small configuration for tests.
    pub fn small() -> Params {
        Params {
            rows: 40,
            cols: 32,
            iters: 6,
            seed: 7,
        }
    }
}

/// Per-processor outcome.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Outcome {
    /// Checksum of this processor's stripe: the parallel decomposition
    /// performs identical per-element arithmetic, so totals agree across
    /// processor counts up to summation order.
    pub stripe_checksum: f64,
    /// Sum of |update| in the final iteration (a convergence proxy).
    pub final_residual: f64,
    /// Sum of |update| in the first iteration.
    pub initial_residual: f64,
}

struct Handles {
    /// `edges[p*2]` = proc p's first stripe row; `edges[p*2+1]` = its last.
    edges: SharedArray<f64>,
    /// Misclassified per-processor marker (see quicksort).
    scratch: SharedArray<f64>,
    phase_done: BarrierId,
}

fn stripe_of(rows: usize, procs: usize, p: usize) -> std::ops::Range<usize> {
    // Balanced partition: the first `rows % procs` stripes get one extra
    // row. Unlike ceiling division this never strands trailing processors
    // with empty stripes (e.g. 400 rows over 64 processors), and it is
    // identical whenever `procs` divides `rows` — which covers every
    // recorded-trace configuration.
    let base = rows / procs;
    let extra = rows % procs;
    let start = base * p + p.min(extra);
    start..start + base + usize::from(p < extra)
}

fn build(p: Params, procs: usize) -> (Arc<SystemSpec>, Handles) {
    let mut b = SystemBuilder::new();
    // One published row per stripe edge: 2 per processor.
    let edges = b.shared_array::<f64>("edges", procs * 2 * p.cols, 1);
    let partitions: Vec<_> = (0..procs)
        .map(|q| vec![edges.range(q * 2 * p.cols..(q * 2 + 2) * p.cols)])
        .collect();
    let phase_done = b.barrier_partitioned(vec![edges.full_range()], partitions);
    let scratch = b.private_array::<f64>("progress", 16);
    (
        b.build(),
        Handles {
            edges,
            scratch,
            phase_done,
        },
    )
}

fn initial(seed: u64, i: usize, j: usize, rows: usize, cols: usize) -> f64 {
    if i == 0 || j == 0 || i == rows - 1 || j == cols - 1 {
        // Fixed edge temperature.
        100.0
    } else {
        let mut r = SplitMix64::new(seed ^ ((i * cols + j) as u64).wrapping_mul(0x5851));
        r.next_range_f64(0.0, 50.0)
    }
}

/// Runs red-black SOR under `cfg` and verifies convergence.
///
/// # Panics
///
/// Panics if the simulation fails, or if the grid is too small for the
/// processor count (each stripe needs at least two rows).
pub fn run(cfg: MidwayConfig, p: Params) -> MidwayRun<Outcome> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run(cfg, &spec, |proc: &mut Proc| session(proc, p, &h)).expect("sor simulation failed")
}

/// Runs red-black SOR over real sockets (`Midway::run_real`); same
/// decomposition and verification as [`run`].
pub fn run_real(
    cfg: MidwayConfig,
    real: &RealConfig,
    p: Params,
) -> Result<MidwayRun<Outcome>, RealError> {
    let (spec, h) = build(p, cfg.procs);
    Midway::run_real(cfg, real, &spec, |proc| session(proc, p, &h))
}

fn session<T: Transport<Msg = NetMsg>>(proc: &mut Proc<'_, T>, p: Params, h: &Handles) -> Outcome {
    let cols = p.cols;
    {
        let me = proc.id();
        let procs = proc.procs();
        let stripe = stripe_of(p.rows, procs, me);
        assert!(
            stripe.len() >= 2,
            "stripe too small: grid {} rows / {procs} procs",
            p.rows
        );
        let local_rows = stripe.len();

        // Private stripe storage (annotated private: not instrumented).
        let mut grid = vec![0.0f64; local_rows * cols];
        for (li, gi) in stripe.clone().enumerate() {
            for j in 0..cols {
                grid[li * cols + j] = initial(p.seed, gi, j, p.rows, cols);
            }
        }
        // Publish initial edge rows.
        let publish = |proc: &mut Proc<'_, T>, grid: &Vec<f64>, li: usize, slot: usize| {
            for j in 0..cols {
                proc.write(&h.edges, slot * cols + j, grid[li * cols + j]);
            }
        };
        publish(proc, &grid, 0, me * 2);
        publish(proc, &grid, local_rows - 1, me * 2 + 1);
        // One misclassified private write per run (6-cycle penalty).
        proc.write(&h.scratch, me % 16, 1.0);
        proc.barrier(h.phase_done);

        let mut initial_residual = 0.0f64;
        let mut final_residual;
        let omega = 0.9;
        let mut residual = 0.0f64;
        for iter in 0..p.iters {
            residual = 0.0;
            for color in 0..2usize {
                // Fetch ghost rows from the neighbours' published edges.
                let above: Option<Vec<f64>> = (me > 0).then(|| {
                    proc.read_vec(
                        &h.edges,
                        ((me - 1) * 2 + 1) * cols..((me - 1) * 2 + 2) * cols,
                    )
                });
                let below: Option<Vec<f64>> = (me + 1 < procs).then(|| {
                    proc.read_vec(&h.edges, (me + 1) * 2 * cols..((me + 1) * 2 + 1) * cols)
                });

                for li in 0..local_rows {
                    let gi = stripe.start + li;
                    if gi == 0 || gi == p.rows - 1 {
                        continue; // fixed boundary row
                    }
                    for j in 1..cols - 1 {
                        if (gi + j) % 2 != color {
                            continue;
                        }
                        let up = if li == 0 {
                            above.as_ref().expect("interior row has a neighbour")[j]
                        } else {
                            grid[(li - 1) * cols + j]
                        };
                        let down = if li == local_rows - 1 {
                            below.as_ref().expect("interior row has a neighbour")[j]
                        } else {
                            grid[(li + 1) * cols + j]
                        };
                        let idx = li * cols + j;
                        let old = grid[idx];
                        let avg = 0.25 * (up + down + grid[idx - 1] + grid[idx + 1]);
                        let new = old + omega * (avg - old);
                        grid[idx] = new;
                        residual += (new - old).abs();
                    }
                    proc.work(cols as u64 / 2 * CYCLES_PER_UPDATE);
                }

                // Publish the edge rows' updated elements (only the colour
                // just computed changed).
                for (li, slot) in [(0usize, me * 2), (local_rows - 1, me * 2 + 1)] {
                    let gi = stripe.start + li;
                    if gi == 0 || gi == p.rows - 1 {
                        continue;
                    }
                    for j in 1..cols - 1 {
                        if (gi + j) % 2 == color {
                            proc.write(&h.edges, slot * cols + j, grid[li * cols + j]);
                        }
                    }
                }
                proc.barrier(h.phase_done);
            }
            if iter == 0 {
                initial_residual = residual;
            }
        }
        final_residual = residual;
        if p.iters == 0 {
            final_residual = 0.0;
        }

        // Weight by global coordinates so the checksum is independent of
        // the stripe decomposition.
        let stripe_checksum = grid
            .iter()
            .enumerate()
            .map(|(k, v)| {
                let global = stripe.start * cols + k;
                v * ((global % 13) as f64 + 1.0)
            })
            .sum::<f64>();
        Outcome {
            stripe_checksum,
            final_residual,
            initial_residual,
        }
    }
}

/// Aggregate verification: SOR must make progress toward the steady state.
pub fn verified(outcomes: &[Outcome]) -> bool {
    let initial: f64 = outcomes.iter().map(|o| o.initial_residual).sum();
    let fin: f64 = outcomes.iter().map(|o| o.final_residual).sum();
    fin < initial
}

/// Total grid checksum (bitwise-stable across backends and processor
/// counts).
pub fn checksum(outcomes: &[Outcome]) -> f64 {
    outcomes.iter().map(|o| o.stripe_checksum).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use midway_core::BackendKind;

    #[test]
    fn converges_on_every_backend() {
        for backend in [
            BackendKind::Rt,
            BackendKind::Vm,
            BackendKind::Blast,
            BackendKind::TwinAll,
        ] {
            let run = run(MidwayConfig::new(4, backend), Params::small());
            assert!(verified(&run.results), "{backend:?}");
        }
    }

    #[test]
    fn parallel_decomposition_is_exact() {
        // Identical per-element arithmetic; only the checksum's summation
        // association differs across stripe decompositions.
        let solo = run(MidwayConfig::standalone(), Params::small());
        let rt = run(MidwayConfig::new(4, BackendKind::Rt), Params::small());
        let vm = run(MidwayConfig::new(5, BackendKind::Vm), Params::small());
        let c0 = checksum(&solo.results);
        let close = |a: f64, b: f64| (a - b).abs() <= 1e-12 * a.abs().max(1.0);
        assert!(close(c0, checksum(&rt.results)), "{c0} vs RT");
        assert!(close(c0, checksum(&vm.results)), "{c0} vs VM");
    }

    #[test]
    fn only_edge_rows_generate_detection_work() {
        let p = Params::small();
        let run = run(MidwayConfig::new(4, BackendKind::Rt), p);
        // Interior updates are private: per phase a processor publishes at
        // most one row's colour per edge (≤ cols writes per iteration),
        // plus the initial publication.
        let per_proc_bound = (2 * p.cols + p.iters * 2 * p.cols) as u64 + 16;
        for c in &run.counters {
            assert!(
                c.dirtybits_set <= per_proc_bound,
                "interior writes leaked into the shared path: {} > {per_proc_bound}",
                c.dirtybits_set
            );
        }
    }
}
