//! Timestamp dirtybits and the per-region dirtybit-update template.
//!
//! Paper §3.1–3.2: every cache line cached on a processor has a dirtybit in
//! that processor's memory. The dirtybit is *actually a timestamp* (a
//! Lamport-clock value) recording the most recent modification; in practice
//! the write path stores a zero ("dirty") and the timestamp is filled in
//! lazily when the guarding synchronization object is transferred.

use midway_stats::CostModel;

use crate::addr::Addr;
use crate::layout::{MemClass, RegionDesc};

/// The value the write-path template stores: "modified, not yet stamped".
pub const DIRTY: u64 = 0;

/// The initial timestamp of every line: older than any real Lamport time.
pub const EPOCH: u64 = 1;

/// What kind of store hit the template (Appendix A entry points).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StoreKind {
    /// 1-byte store.
    Byte,
    /// 2-byte store.
    Halfword,
    /// 4-byte store.
    Word,
    /// 8-byte store.
    Doubleword,
    /// Unaligned or multi-word store (structure assignment, `bcopy`, ...).
    Area(usize),
}

impl StoreKind {
    /// Classifies a store of `len` bytes.
    pub fn of_len(len: usize) -> StoreKind {
        match len {
            1 => StoreKind::Byte,
            2 => StoreKind::Halfword,
            4 => StoreKind::Word,
            8 => StoreKind::Doubleword,
            n => StoreKind::Area(n),
        }
    }

    /// The store's length in bytes.
    #[allow(clippy::len_without_is_empty)] // a store is never empty
    pub fn len(&self) -> usize {
        match self {
            StoreKind::Byte => 1,
            StoreKind::Halfword => 2,
            StoreKind::Word => 4,
            StoreKind::Doubleword => 8,
            StoreKind::Area(n) => *n,
        }
    }
}

/// The per-processor dirtybit array of one region.
#[derive(Clone, Debug)]
pub struct DirtyBits {
    bits: Vec<u64>,
}

impl DirtyBits {
    /// Creates an array of `lines` dirtybits, all at [`EPOCH`].
    pub fn new(lines: usize) -> DirtyBits {
        DirtyBits {
            bits: vec![EPOCH; lines],
        }
    }

    /// Number of lines tracked.
    pub fn lines(&self) -> usize {
        self.bits.len()
    }

    /// Marks `line` dirty (stores zero, as the template does).
    pub fn mark(&mut self, line: usize) {
        self.bits[line] = DIRTY;
    }

    /// The raw dirtybit value of `line`.
    pub fn get(&self, line: usize) -> u64 {
        self.bits[line]
    }

    /// Stamps `line` with timestamp `ts` (requester side after applying an
    /// update, or releaser side when lazily timestamping).
    pub fn stamp(&mut self, line: usize, ts: u64) {
        self.bits[line] = ts;
    }

    /// Scans lines `range` on behalf of a requester that last saw time
    /// `last_seen`, lazily stamping freshly dirty lines with `now`.
    ///
    /// A line must be sent if it was modified after `last_seen`: either its
    /// dirtybit is still [`DIRTY`] (modified since the last transfer — it is
    /// stamped with `now` as a side effect, the paper's lazy timestamping)
    /// or it carries a timestamp greater than `last_seen`.
    pub fn scan(&mut self, range: std::ops::Range<usize>, last_seen: u64, now: u64) -> ScanOutcome {
        let mut out = ScanOutcome::default();
        self.scan_into(&mut out, range, last_seen, now);
        out
    }

    /// [`scan`](DirtyBits::scan) into a caller-owned outcome, so the `lines`
    /// vector's capacity survives across scans. Clears `out` first.
    ///
    /// Scans blocks of lines at a time: a line is *interesting* iff
    /// `v == DIRTY || v > last_seen`, which (with `DIRTY == 0`) is exactly
    /// `v.wrapping_sub(1) >= last_seen` — one branch-free comparison per
    /// line lets the all-clean block fast path skip the per-line work that
    /// dominates steady-state scans.
    pub fn scan_into(
        &mut self,
        out: &mut ScanOutcome,
        range: std::ops::Range<usize>,
        last_seen: u64,
        now: u64,
    ) {
        out.lines.clear();
        out.clean_reads = 0;
        out.dirty_reads = 0;
        // 8 lines = 64 bytes of timestamps per step; the fixed-size array
        // view drops the per-lane bounds checks so the interesting-test
        // reduction compiles to vector compares.
        const BLOCK: usize = 8;
        let mut line = range.start;
        let end = range.end;
        while line + BLOCK <= end {
            let block: &[u64; BLOCK] = self.bits[line..line + BLOCK]
                .try_into()
                .expect("BLOCK lines");
            let mut any = false;
            for &v in block {
                any |= v.wrapping_sub(1) >= last_seen;
            }
            if !any {
                out.clean_reads += BLOCK as u64;
                line += BLOCK;
                continue;
            }
            for i in line..line + BLOCK {
                Self::scan_one(&mut self.bits, out, i, last_seen, now);
            }
            line += BLOCK;
        }
        for i in line..end {
            Self::scan_one(&mut self.bits, out, i, last_seen, now);
        }
    }

    #[inline]
    fn scan_one(bits: &mut [u64], out: &mut ScanOutcome, line: usize, last_seen: u64, now: u64) {
        let v = bits[line];
        if v == DIRTY {
            bits[line] = now;
            out.dirty_reads += 1;
            out.lines.push(line);
        } else if v > last_seen {
            out.dirty_reads += 1;
            out.lines.push(line);
        } else {
            out.clean_reads += 1;
        }
    }

    /// The line-at-a-time reference implementation of [`DirtyBits::scan`]
    /// (`DirtyBits::scan`), kept as the equivalence oracle for the
    /// chunked hot path: property tests assert the two agree on random
    /// arrays, and `hostperf` times both.
    pub fn scan_reference(
        &mut self,
        range: std::ops::Range<usize>,
        last_seen: u64,
        now: u64,
    ) -> ScanOutcome {
        let mut out = ScanOutcome::default();
        for line in range {
            let v = self.bits[line];
            if v == DIRTY {
                self.bits[line] = now;
                out.dirty_reads += 1;
                out.lines.push(line);
            } else if v > last_seen {
                out.dirty_reads += 1;
                out.lines.push(line);
            } else {
                out.clean_reads += 1;
            }
        }
        out
    }
}

/// Result of a dirtybit scan: which lines to send and the read counts
/// feeding the paper's Table 2.
#[derive(Clone, Debug, Default)]
pub struct ScanOutcome {
    /// Line indices (within the region) that must be sent.
    pub lines: Vec<usize>,
    /// Dirtybits read that were clean (5 cycles each in Table 1).
    pub clean_reads: u64,
    /// Dirtybits read that were dirty (4 cycles each; two memory references
    /// each in Table 5's accounting, for the timestamp store).
    pub dirty_reads: u64,
}

/// Result of a template invocation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TemplateHit {
    /// Cycles charged for the inline code plus the template body.
    pub cycles: u64,
    /// Dirtybits stored (zero for a private-region hit).
    pub lines_marked: u64,
    /// True when a write to private memory went through the shared path
    /// (the paper's six-instruction misclassification penalty).
    pub misclassified: bool,
}

/// The dirtybit-update code template at the base of a region (Appendix A).
///
/// A real template is machine code specialized with the region's cache-line
/// size and dirtybit base; here it is a small struct holding the same
/// constants, with one `invoke` entry per store kind.
#[derive(Clone, Copy, Debug)]
pub struct Template {
    class: MemClass,
    line_shift: u32,
}

impl Template {
    /// Builds the template for a region (done when the region is first
    /// allocated, in the paper).
    pub fn for_region(desc: &RegionDesc) -> Template {
        Template {
            class: desc.class,
            line_shift: desc.line_shift,
        }
    }

    /// The region's class.
    pub fn class(&self) -> MemClass {
        self.class
    }

    /// Invokes the template for a store of `kind` at `addr`, marking the
    /// covered lines dirty in `bits`.
    ///
    /// The common cases — a store no larger than one cache line — cost the
    /// paper's 9 cycles. The rarely-taken area path pays a call-out base
    /// cost plus one store per covered line. A private-region template
    /// returns immediately at the misclassification penalty of 6 cycles.
    pub fn invoke(
        &self,
        bits: &mut DirtyBits,
        addr: Addr,
        kind: StoreKind,
        cost: &CostModel,
    ) -> TemplateHit {
        if self.class == MemClass::Private {
            return TemplateHit {
                cycles: cost.dirtybit_set_private,
                lines_marked: 0,
                misclassified: true,
            };
        }
        let len = kind.len().max(1);
        let first = addr.line_in_region(self.line_shift);
        let last = Addr(addr.raw() + (len as u64 - 1)).line_in_region(self.line_shift);
        let nlines = (last - first + 1) as u64;
        let single_line = first == last;
        let cycles = match kind {
            StoreKind::Byte | StoreKind::Halfword | StoreKind::Word if single_line => {
                cost.dirtybit_set_word
            }
            StoreKind::Doubleword if single_line => cost.dirtybit_set_double,
            _ => cost.dirtybit_set_area_base + nlines * cost.dirtybit_update,
        };
        for line in first..=last {
            bits.mark(line);
        }
        TemplateHit {
            cycles,
            lines_marked: nlines,
            misclassified: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{LayoutBuilder, MemClass};

    fn shared_template(line_shift: u32) -> (Template, DirtyBits, Addr) {
        let mut b = LayoutBuilder::new();
        let a = b.alloc("t", 4096, MemClass::Shared, line_shift);
        let layout = b.build();
        let desc = layout.region_of(a.addr);
        (
            Template::for_region(desc),
            DirtyBits::new(desc.lines()),
            a.addr,
        )
    }

    #[test]
    fn doubleword_to_doubleword_line_costs_nine_cycles() {
        let cost = CostModel::r3000_mach();
        let (t, mut bits, base) = shared_template(3);
        let hit = t.invoke(&mut bits, base + 16, StoreKind::Doubleword, &cost);
        assert_eq!(hit.cycles, 9);
        assert_eq!(hit.lines_marked, 1);
        assert!(!hit.misclassified);
        assert_eq!(bits.get(2), DIRTY);
        assert_eq!(bits.get(1), EPOCH);
    }

    #[test]
    fn word_to_word_line_costs_nine_cycles() {
        let cost = CostModel::r3000_mach();
        let (t, mut bits, base) = shared_template(2);
        let hit = t.invoke(&mut bits, base + 4, StoreKind::Word, &cost);
        assert_eq!(hit.cycles, 9);
        assert_eq!(bits.get(1), DIRTY);
    }

    #[test]
    fn private_template_returns_at_misclassification_cost() {
        let cost = CostModel::r3000_mach();
        let mut b = LayoutBuilder::new();
        let a = b.alloc("p", 64, MemClass::Private, 3);
        let layout = b.build();
        let t = Template::for_region(layout.region_of(a.addr));
        let mut bits = DirtyBits::new(8);
        let hit = t.invoke(&mut bits, a.addr, StoreKind::Word, &cost);
        assert_eq!(hit.cycles, 6);
        assert_eq!(hit.lines_marked, 0);
        assert!(hit.misclassified);
        assert_eq!(
            bits.get(0),
            EPOCH,
            "private template must not touch dirtybits"
        );
    }

    #[test]
    fn area_store_marks_every_covered_line() {
        let cost = CostModel::r3000_mach();
        let (t, mut bits, base) = shared_template(3);
        // 40 bytes starting at offset 4 covers lines 0..=5.
        let hit = t.invoke(&mut bits, base + 4, StoreKind::Area(40), &cost);
        assert_eq!(hit.lines_marked, 6);
        assert_eq!(
            hit.cycles,
            cost.dirtybit_set_area_base + 6 * cost.dirtybit_update
        );
        for line in 0..6 {
            assert_eq!(bits.get(line), DIRTY);
        }
        assert_eq!(bits.get(6), EPOCH);
    }

    #[test]
    fn doubleword_spanning_two_word_lines_takes_area_path() {
        let cost = CostModel::r3000_mach();
        let (t, mut bits, base) = shared_template(2);
        let hit = t.invoke(&mut bits, base + 4, StoreKind::Doubleword, &cost);
        assert_eq!(hit.lines_marked, 2);
        assert!(hit.cycles > cost.dirtybit_set_double);
    }

    #[test]
    fn scan_sends_dirty_and_newer_lines_and_stamps_lazily() {
        let mut bits = DirtyBits::new(8);
        bits.mark(1);
        bits.stamp(2, 10); // modified at time 10 (already stamped)
        bits.stamp(3, 3); // older than last_seen
        let out = bits.scan(0..8, 5, 20);
        assert_eq!(out.lines, vec![1, 2]);
        assert_eq!(out.dirty_reads, 2);
        assert_eq!(out.clean_reads, 6);
        // Lazy stamping: the dirty line now carries the releaser's time.
        assert_eq!(bits.get(1), 20);
        assert_eq!(bits.get(2), 10);
    }

    #[test]
    fn scan_with_epoch_last_seen_sends_everything_modified() {
        let mut bits = DirtyBits::new(4);
        bits.mark(0);
        bits.stamp(2, 7);
        let out = bits.scan(0..4, EPOCH, 9);
        assert_eq!(out.lines, vec![0, 2]);
    }

    #[test]
    fn chunked_scan_matches_reference_on_block_edges() {
        // 20 lines: two full 8-line blocks plus a 4-line tail, with
        // interesting lines placed at block seams and in the tail.
        for interesting in [vec![], vec![0], vec![7, 8], vec![15, 16, 19], vec![17]] {
            let mut a = DirtyBits::new(20);
            let mut b = DirtyBits::new(20);
            for (i, &line) in interesting.iter().enumerate() {
                if i % 2 == 0 {
                    a.mark(line);
                    b.mark(line);
                } else {
                    a.stamp(line, 50);
                    b.stamp(line, 50);
                }
            }
            let got = a.scan(0..20, 10, 99);
            let want = b.scan_reference(0..20, 10, 99);
            assert_eq!(got.lines, want.lines, "interesting {interesting:?}");
            assert_eq!(got.dirty_reads, want.dirty_reads);
            assert_eq!(got.clean_reads, want.clean_reads);
            assert_eq!(a.bits, b.bits, "lazy stamping must match");
        }
    }

    #[test]
    fn scan_into_reuses_and_clears_the_outcome() {
        let mut bits = DirtyBits::new(16);
        bits.mark(3);
        let mut out = ScanOutcome::default();
        bits.scan_into(&mut out, 0..16, 5, 20);
        assert_eq!(out.lines, vec![3]);
        // Second scan over now-clean lines fully resets the outcome.
        bits.scan_into(&mut out, 0..16, 25, 30);
        assert!(out.lines.is_empty());
        assert_eq!(out.dirty_reads, 0);
        assert_eq!(out.clean_reads, 16);
    }

    #[test]
    fn store_kind_classification() {
        assert_eq!(StoreKind::of_len(1), StoreKind::Byte);
        assert_eq!(StoreKind::of_len(2), StoreKind::Halfword);
        assert_eq!(StoreKind::of_len(4), StoreKind::Word);
        assert_eq!(StoreKind::of_len(8), StoreKind::Doubleword);
        assert_eq!(StoreKind::of_len(24), StoreKind::Area(24));
        assert_eq!(StoreKind::Area(24).len(), 24);
    }
}
