//! Word-granularity page diffing for VM-DSM write collection.
//!
//! A *diff* is "a succinct description of all modifications to the page"
//! (paper §3.4): the changed words, run-length encoded. Runs matter twice:
//! they determine the wire size of an update and they drive the diff cost
//! model (a fragmented page costs more to diff than a uniform one —
//! Table 1's 260 µs vs 1870 µs endpoints).

use std::ops::Range;

/// Comparison granularity: the paper diffs in words.
pub const WORD: usize = 4;

/// One maximal run of changed bytes within a page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset of the run within the page.
    pub offset: usize,
    /// The new bytes.
    pub data: Vec<u8>,
}

impl DiffRun {
    /// The byte range this run covers.
    pub fn range(&self) -> Range<usize> {
        self.offset..self.offset + self.data.len()
    }
}

/// All modifications to one page, relative to its twin.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PageDiff {
    /// Maximal changed runs, in increasing offset order, non-adjacent.
    pub runs: Vec<DiffRun>,
}

/// Wire overhead per run: offset + length descriptors.
pub const RUN_HEADER_BYTES: usize = 8;

impl PageDiff {
    /// Compares `current` against `twin` word by word.
    ///
    /// The scan runs 64 bytes (sixteen words) at a time: the block is
    /// XORed as eight `u64` lanes — a shape the autovectorizer turns into
    /// two 32-byte vector compares — and equal blocks, the overwhelmingly
    /// common case on a mostly-clean page, are skipped with one combined
    /// test. Only mismatching lanes fall back to word-granularity run
    /// extraction. The result is identical to
    /// [`compute_reference`](Self::compute_reference) (property-tested).
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn compute(current: &[u8], twin: &[u8]) -> PageDiff {
        let mut diff = PageDiff::default();
        Self::compute_into(&mut diff, current, twin);
        diff
    }

    /// [`compute`](Self::compute) into a caller-owned buffer: clears
    /// `out` and fills it. Collection loops diff page after page; reusing
    /// one `PageDiff` avoids an allocation per page.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn compute_into(out: &mut PageDiff, current: &[u8], twin: &[u8]) {
        assert_eq!(current.len(), twin.len(), "page and twin must match");
        out.runs.clear();
        /// Block width: sixteen words compared per step in the fast path.
        const BLOCK: usize = 64;
        /// `u64` lanes per block.
        const LANES: usize = BLOCK / 8;
        let len = current.len();
        let mut i = 0;
        while i + BLOCK <= len {
            // Fixed-size array views let the compiler drop every bounds
            // check inside the lane loops.
            let ca: &[u8; BLOCK] = current[i..i + BLOCK].try_into().expect("block");
            let ct: &[u8; BLOCK] = twin[i..i + BLOCK].try_into().expect("block");
            let mut x = [0u64; LANES];
            for l in 0..LANES {
                let a = u64::from_le_bytes(ca[l * 8..l * 8 + 8].try_into().expect("8 bytes"));
                let b = u64::from_le_bytes(ct[l * 8..l * 8 + 8].try_into().expect("8 bytes"));
                x[l] = a ^ b;
            }
            let mut any = 0u64;
            for &v in &x {
                any |= v;
            }
            if any != 0 {
                // Extract the changed words lane by lane, in order (lanes
                // ascend in address, words ascend within a lane).
                for (l, &v) in x.iter().enumerate() {
                    if v == 0 {
                        continue;
                    }
                    if v & 0xFFFF_FFFF != 0 {
                        Self::push_word(out, current, i + l * 8, WORD);
                    }
                    if v >> 32 != 0 {
                        Self::push_word(out, current, i + l * 8 + WORD, WORD);
                    }
                }
            }
            i += BLOCK;
        }
        // Tail: fewer than BLOCK bytes left, word-at-a-time like the
        // reference (BLOCK is a multiple of WORD, so `i` is word-aligned).
        while i < len {
            let w = WORD.min(len - i);
            if current[i..i + w] != twin[i..i + w] {
                Self::push_word(out, current, i, w);
            }
            i += w;
        }
    }

    /// Appends the changed word at `offset` to the run list, coalescing
    /// with the previous run when adjacent.
    #[inline]
    fn push_word(out: &mut PageDiff, current: &[u8], offset: usize, w: usize) {
        match out.runs.last_mut() {
            Some(run) if run.offset + run.data.len() == offset => {
                run.data.extend_from_slice(&current[offset..offset + w]);
            }
            _ => out.runs.push(DiffRun {
                offset,
                data: current[offset..offset + w].to_vec(),
            }),
        }
    }

    /// The byte-at-a-time reference implementation of [`PageDiff::compute`]
    /// (`PageDiff::compute`): one word compared per step, exactly the
    /// paper's description. Kept as the equivalence oracle for the
    /// chunked hot path — property tests assert `compute ==
    /// compute_reference` on random inputs, and `hostperf` times both.
    pub fn compute_reference(current: &[u8], twin: &[u8]) -> PageDiff {
        assert_eq!(current.len(), twin.len(), "page and twin must match");
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut i = 0;
        while i < current.len() {
            let w = WORD.min(current.len() - i);
            if current[i..i + w] != twin[i..i + w] {
                match runs.last_mut() {
                    Some(run) if run.offset + run.data.len() == i => {
                        run.data.extend_from_slice(&current[i..i + w]);
                    }
                    _ => runs.push(DiffRun {
                        offset: i,
                        data: current[i..i + w].to_vec(),
                    }),
                }
            }
            i += w;
        }
        PageDiff { runs }
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of maximal changed runs (the diff cost model's fragmentation
    /// measure).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total changed bytes.
    pub fn changed_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Bytes this diff occupies on the wire.
    pub fn wire_size(&self) -> usize {
        self.changed_bytes() + self.runs.len() * RUN_HEADER_BYTES
    }

    /// Applies the diff to `page`.
    ///
    /// # Panics
    ///
    /// Panics if a run falls outside `page`.
    pub fn apply(&self, page: &mut [u8]) {
        for run in &self.runs {
            page[run.range()].copy_from_slice(&run.data);
        }
    }

    /// Restricts the diff to the byte `ranges` (sorted, non-overlapping,
    /// page-relative): the part of the page's modifications that belongs to
    /// the synchronization object being transferred.
    ///
    /// Both the runs and the ranges are sorted and non-overlapping, so
    /// this is a two-pointer merge: O(runs + ranges + output), with the
    /// output produced already in offset order (the old implementation
    /// intersected every run with every range and sorted afterwards).
    pub fn restrict(&self, ranges: &[Range<usize>]) -> PageDiff {
        let mut out = Vec::new();
        let mut j = 0;
        for run in &self.runs {
            let run_end = run.offset + run.data.len();
            // Ranges wholly before this run are wholly before every later
            // run too (runs ascend), so the cursor only moves forward.
            while j < ranges.len() && ranges[j].end <= run.offset {
                j += 1;
            }
            // A range reaching past this run's end may still intersect
            // the next run, so scan ahead without consuming.
            for range in &ranges[j..] {
                if range.start >= run_end {
                    break;
                }
                let lo = run.offset.max(range.start);
                let hi = run_end.min(range.end);
                if lo < hi {
                    out.push(DiffRun {
                        offset: lo,
                        data: run.data[lo - run.offset..hi - run.offset].to_vec(),
                    });
                }
            }
        }
        PageDiff { runs: out }
    }

    /// True when every changed byte lies inside `ranges` — i.e. shipping
    /// the restricted diff ships *all* modified data on the page, so the
    /// page may be cleaned afterwards.
    pub fn covered_by(&self, ranges: &[Range<usize>]) -> bool {
        self.changed_bytes() == self.restrict(ranges).changed_bytes()
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // one-range restrictions are the point here
mod tests {
    use super::*;

    fn page_pair() -> (Vec<u8>, Vec<u8>) {
        (vec![0u8; 256], vec![0u8; 256])
    }

    #[test]
    fn identical_pages_diff_empty() {
        let (cur, twin) = page_pair();
        let d = PageDiff::compute(&cur, &twin);
        assert!(d.is_empty());
        assert_eq!(d.wire_size(), 0);
    }

    #[test]
    fn adjacent_changed_words_coalesce_into_one_run() {
        let (mut cur, twin) = page_pair();
        cur[8..16].copy_from_slice(&[1; 8]);
        let d = PageDiff::compute(&cur, &twin);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.runs[0].offset, 8);
        assert_eq!(d.changed_bytes(), 8);
    }

    #[test]
    fn every_other_word_makes_maximal_runs() {
        let (mut cur, twin) = page_pair();
        for w in (0..256 / WORD).step_by(2) {
            cur[w * WORD] = 0xFF;
        }
        let d = PageDiff::compute(&cur, &twin);
        assert_eq!(d.run_count(), 256 / WORD / 2);
        // Word granularity: a single changed byte ships the whole word.
        assert_eq!(d.changed_bytes(), 256 / 2);
    }

    #[test]
    fn apply_reproduces_the_current_page() {
        let (mut cur, twin) = page_pair();
        cur[0] = 1;
        cur[100] = 2;
        cur[255] = 3;
        let d = PageDiff::compute(&cur, &twin);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn partial_tail_word_is_compared() {
        let mut cur = vec![0u8; 10];
        let twin = vec![0u8; 10];
        cur[9] = 5;
        let d = PageDiff::compute(&cur, &twin);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.runs[0].offset, 8);
        assert_eq!(d.runs[0].data.len(), 2);
    }

    #[test]
    fn restrict_cuts_runs_to_bound_ranges() {
        let (mut cur, twin) = page_pair();
        cur[0..32].copy_from_slice(&[9; 32]);
        let d = PageDiff::compute(&cur, &twin);
        let r = d.restrict(&[8..16, 24..28]);
        assert_eq!(r.run_count(), 2);
        assert_eq!(r.runs[0].range(), 8..16);
        assert_eq!(r.runs[1].range(), 24..28);
        assert_eq!(r.changed_bytes(), 12);
        assert!(!d.covered_by(&[8..16, 24..28]));
        assert!(d.covered_by(&[0..32]));
        assert!(d.covered_by(&[0..256]));
    }

    #[test]
    fn restrict_merges_runs_and_ranges_in_order() {
        // A diff with several runs against several ranges, exercising every
        // merge case: a range splitting a run, a range spanning two runs,
        // a range between runs (empty intersection), and trailing runs
        // past the last range.
        let (mut cur, twin) = page_pair();
        cur[0..16].copy_from_slice(&[1; 16]); // run A: 0..16
        cur[32..48].copy_from_slice(&[2; 16]); // run B: 32..48
        cur[64..72].copy_from_slice(&[3; 8]); // run C: 64..72
        cur[128..132].copy_from_slice(&[4; 4]); // run D: 128..132
        let d = PageDiff::compute(&cur, &twin);
        assert_eq!(d.run_count(), 4);
        // Range 1 splits run A; range 2 spans the tail of A, the gap, and
        // the head of B; range 3 covers C exactly; nothing covers D.
        let ranges = [4..8, 12..36, 64..72];
        let r = d.restrict(&ranges);
        let got: Vec<Range<usize>> = r.runs.iter().map(DiffRun::range).collect();
        assert_eq!(got, vec![4..8, 12..16, 32..36, 64..72]);
        // Offsets strictly ascend without any sort step.
        assert!(got.windows(2).all(|w| w[0].end <= w[1].start));
        // And the result matches the brute-force per-byte intersection.
        let mut expect_bytes = 0;
        for (i, (c, t)) in cur.iter().zip(&twin).enumerate() {
            let word = i / WORD * WORD;
            let word_changed = cur[word..(word + WORD).min(cur.len())]
                != twin[word..(word + WORD).min(twin.len())];
            let _ = (c, t);
            if word_changed && ranges.iter().any(|r| r.contains(&i)) {
                expect_bytes += 1;
            }
        }
        assert_eq!(r.changed_bytes(), expect_bytes);
        assert!(!d.covered_by(&ranges));
        assert!(d.covered_by(&[0..256]));
    }

    #[test]
    fn compute_into_reuses_the_buffer() {
        let (mut cur, twin) = page_pair();
        cur[8..16].copy_from_slice(&[5; 8]);
        let mut diff = PageDiff::default();
        PageDiff::compute_into(&mut diff, &cur, &twin);
        assert_eq!(diff.run_count(), 1);
        // A second, different computation into the same buffer fully
        // replaces the first.
        let (mut cur2, twin2) = page_pair();
        cur2[100] = 9;
        PageDiff::compute_into(&mut diff, &cur2, &twin2);
        assert_eq!(diff.run_count(), 1);
        assert_eq!(diff.runs[0].offset, 100);
        assert_eq!(diff, PageDiff::compute(&cur2, &twin2));
    }

    #[test]
    fn chunked_compute_matches_reference_on_edges() {
        // Lengths around the 64-byte block boundary (and the old 16-byte
        // seams), with changes at the seams and in partial tail words.
        for len in [
            1usize, 3, 4, 15, 16, 17, 19, 31, 32, 33, 48, 50, 63, 64, 65, 96, 127, 128, 129, 130,
        ] {
            for changed in 0..len {
                let twin = vec![0u8; len];
                let mut cur = twin.clone();
                cur[changed] = 0xEE;
                assert_eq!(
                    PageDiff::compute(&cur, &twin),
                    PageDiff::compute_reference(&cur, &twin),
                    "len {len}, changed byte {changed}"
                );
            }
        }
    }

    #[test]
    fn wire_size_includes_run_headers() {
        let (mut cur, twin) = page_pair();
        cur[0] = 1;
        cur[100] = 1;
        let d = PageDiff::compute(&cur, &twin);
        assert_eq!(d.wire_size(), 2 * WORD + 2 * RUN_HEADER_BYTES);
    }
}
