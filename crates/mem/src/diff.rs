//! Word-granularity page diffing for VM-DSM write collection.
//!
//! A *diff* is "a succinct description of all modifications to the page"
//! (paper §3.4): the changed words, run-length encoded. Runs matter twice:
//! they determine the wire size of an update and they drive the diff cost
//! model (a fragmented page costs more to diff than a uniform one —
//! Table 1's 260 µs vs 1870 µs endpoints).

use std::ops::Range;

/// Comparison granularity: the paper diffs in words.
pub const WORD: usize = 4;

/// One maximal run of changed bytes within a page.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DiffRun {
    /// Byte offset of the run within the page.
    pub offset: usize,
    /// The new bytes.
    pub data: Vec<u8>,
}

impl DiffRun {
    /// The byte range this run covers.
    pub fn range(&self) -> Range<usize> {
        self.offset..self.offset + self.data.len()
    }
}

/// All modifications to one page, relative to its twin.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PageDiff {
    /// Maximal changed runs, in increasing offset order, non-adjacent.
    pub runs: Vec<DiffRun>,
}

/// Wire overhead per run: offset + length descriptors.
pub const RUN_HEADER_BYTES: usize = 8;

impl PageDiff {
    /// Compares `current` against `twin` word by word.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn compute(current: &[u8], twin: &[u8]) -> PageDiff {
        assert_eq!(current.len(), twin.len(), "page and twin must match");
        let mut runs: Vec<DiffRun> = Vec::new();
        let mut i = 0;
        while i < current.len() {
            let w = WORD.min(current.len() - i);
            if current[i..i + w] != twin[i..i + w] {
                match runs.last_mut() {
                    Some(run) if run.offset + run.data.len() == i => {
                        run.data.extend_from_slice(&current[i..i + w]);
                    }
                    _ => runs.push(DiffRun {
                        offset: i,
                        data: current[i..i + w].to_vec(),
                    }),
                }
            }
            i += w;
        }
        PageDiff { runs }
    }

    /// True when nothing changed.
    pub fn is_empty(&self) -> bool {
        self.runs.is_empty()
    }

    /// Number of maximal changed runs (the diff cost model's fragmentation
    /// measure).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// Total changed bytes.
    pub fn changed_bytes(&self) -> usize {
        self.runs.iter().map(|r| r.data.len()).sum()
    }

    /// Bytes this diff occupies on the wire.
    pub fn wire_size(&self) -> usize {
        self.changed_bytes() + self.runs.len() * RUN_HEADER_BYTES
    }

    /// Applies the diff to `page`.
    ///
    /// # Panics
    ///
    /// Panics if a run falls outside `page`.
    pub fn apply(&self, page: &mut [u8]) {
        for run in &self.runs {
            page[run.range()].copy_from_slice(&run.data);
        }
    }

    /// Restricts the diff to the byte `ranges` (sorted, non-overlapping,
    /// page-relative): the part of the page's modifications that belongs to
    /// the synchronization object being transferred.
    pub fn restrict(&self, ranges: &[Range<usize>]) -> PageDiff {
        let mut out = Vec::new();
        for run in &self.runs {
            for range in ranges {
                let lo = run.offset.max(range.start);
                let hi = (run.offset + run.data.len()).min(range.end);
                if lo < hi {
                    out.push(DiffRun {
                        offset: lo,
                        data: run.data[lo - run.offset..hi - run.offset].to_vec(),
                    });
                }
            }
        }
        out.sort_by_key(|r| r.offset);
        PageDiff { runs: out }
    }

    /// True when every changed byte lies inside `ranges` — i.e. shipping
    /// the restricted diff ships *all* modified data on the page, so the
    /// page may be cleaned afterwards.
    pub fn covered_by(&self, ranges: &[Range<usize>]) -> bool {
        self.changed_bytes() == self.restrict(ranges).changed_bytes()
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // one-range restrictions are the point here
mod tests {
    use super::*;

    fn page_pair() -> (Vec<u8>, Vec<u8>) {
        (vec![0u8; 256], vec![0u8; 256])
    }

    #[test]
    fn identical_pages_diff_empty() {
        let (cur, twin) = page_pair();
        let d = PageDiff::compute(&cur, &twin);
        assert!(d.is_empty());
        assert_eq!(d.wire_size(), 0);
    }

    #[test]
    fn adjacent_changed_words_coalesce_into_one_run() {
        let (mut cur, twin) = page_pair();
        cur[8..16].copy_from_slice(&[1; 8]);
        let d = PageDiff::compute(&cur, &twin);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.runs[0].offset, 8);
        assert_eq!(d.changed_bytes(), 8);
    }

    #[test]
    fn every_other_word_makes_maximal_runs() {
        let (mut cur, twin) = page_pair();
        for w in (0..256 / WORD).step_by(2) {
            cur[w * WORD] = 0xFF;
        }
        let d = PageDiff::compute(&cur, &twin);
        assert_eq!(d.run_count(), 256 / WORD / 2);
        // Word granularity: a single changed byte ships the whole word.
        assert_eq!(d.changed_bytes(), 256 / 2);
    }

    #[test]
    fn apply_reproduces_the_current_page() {
        let (mut cur, twin) = page_pair();
        cur[0] = 1;
        cur[100] = 2;
        cur[255] = 3;
        let d = PageDiff::compute(&cur, &twin);
        let mut rebuilt = twin.clone();
        d.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur);
    }

    #[test]
    fn partial_tail_word_is_compared() {
        let mut cur = vec![0u8; 10];
        let twin = vec![0u8; 10];
        cur[9] = 5;
        let d = PageDiff::compute(&cur, &twin);
        assert_eq!(d.run_count(), 1);
        assert_eq!(d.runs[0].offset, 8);
        assert_eq!(d.runs[0].data.len(), 2);
    }

    #[test]
    fn restrict_cuts_runs_to_bound_ranges() {
        let (mut cur, twin) = page_pair();
        cur[0..32].copy_from_slice(&[9; 32]);
        let d = PageDiff::compute(&cur, &twin);
        let r = d.restrict(&[8..16, 24..28]);
        assert_eq!(r.run_count(), 2);
        assert_eq!(r.runs[0].range(), 8..16);
        assert_eq!(r.runs[1].range(), 24..28);
        assert_eq!(r.changed_bytes(), 12);
        assert!(!d.covered_by(&[8..16, 24..28]));
        assert!(d.covered_by(&[0..32]));
        assert!(d.covered_by(&[0..256]));
    }

    #[test]
    fn wire_size_includes_run_headers() {
        let (mut cur, twin) = page_pair();
        cur[0] = 1;
        cur[100] = 1;
        let d = PageDiff::compute(&cur, &twin);
        assert_eq!(d.wire_size(), 2 * WORD + 2 * RUN_HEADER_BYTES);
    }
}
