//! Simulated virtual-memory state for VM-DSM write trapping.
//!
//! Paper §3.3: shared pages start read-only and clean. The first store to a
//! page write-faults; the runtime saves a copy of the page (its *twin*),
//! marks it dirty, and grants write access. Collection later diffs the page
//! against the twin; once all modified data has been shipped, the page is
//! cleaned: twin freed, page write-protected again.

use std::sync::Arc;

use crate::addr::PAGE_SIZE;
use crate::layout::Layout;

/// Result of probing a store against the page protection.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WriteAccess {
    /// The page is writable; the store proceeds at full speed.
    Ok,
    /// The page is write-protected; a fault must be serviced first.
    Fault,
}

#[derive(Debug, Default)]
struct PageMeta {
    writable: bool,
    twin: Option<Box<[u8]>>,
}

#[derive(Debug)]
struct RegionPages {
    pages: Vec<PageMeta>,
}

/// One processor's page table over the whole layout.
///
/// Only the *application write path* consults protection; the DSM runtime
/// itself applies incoming updates directly (the real system applies them
/// through a privileged mapping).
pub struct PageTable {
    layout: Arc<Layout>,
    regions: Vec<Option<RegionPages>>,
}

impl PageTable {
    /// Creates a page table with every page write-protected and clean.
    pub fn new(layout: Arc<Layout>) -> PageTable {
        let slots = layout.region_slots();
        PageTable {
            layout,
            regions: (0..slots).map(|_| None).collect(),
        }
    }

    /// Probes a store to page `page` of region `region`.
    pub fn store_probe(&mut self, region: usize, page: usize) -> WriteAccess {
        if self.meta(region, page).writable {
            WriteAccess::Ok
        } else {
            WriteAccess::Fault
        }
    }

    /// Services a write fault: saves `current` as the page's twin, marks
    /// the page dirty and writable.
    ///
    /// # Panics
    ///
    /// Panics if the page is already writable (spurious fault).
    pub fn fault_in(&mut self, region: usize, page: usize, current: &[u8]) {
        let meta = self.meta(region, page);
        assert!(!meta.writable, "fault on a writable page");
        meta.twin = Some(current.to_vec().into_boxed_slice());
        meta.writable = true;
    }

    /// Whether the page is dirty (has a twin).
    pub fn is_dirty(&mut self, region: usize, page: usize) -> bool {
        self.meta(region, page).twin.is_some()
    }

    /// Whether the page is writable.
    pub fn is_writable(&mut self, region: usize, page: usize) -> bool {
        self.meta(region, page).writable
    }

    /// The page's twin, if dirty.
    pub fn twin(&mut self, region: usize, page: usize) -> Option<&[u8]> {
        self.meta(region, page).twin.as_deref()
    }

    /// Mutable access to the twin (incoming updates are applied to the twin
    /// of a dirty page so they are not later mistaken for local writes).
    pub fn twin_mut(&mut self, region: usize, page: usize) -> Option<&mut [u8]> {
        self.meta(region, page).twin.as_deref_mut()
    }

    /// Cleans the page: frees the twin and write-protects it again.
    pub fn clean(&mut self, region: usize, page: usize) {
        let meta = self.meta(region, page);
        meta.twin = None;
        meta.writable = false;
    }

    /// The dirty pages among `pages` (within one region), in order.
    pub fn dirty_pages_in(&mut self, region: usize, pages: std::ops::Range<usize>) -> Vec<usize> {
        pages
            .filter(|p| self.meta(region, *p).twin.is_some())
            .collect()
    }

    fn meta(&mut self, region: usize, page: usize) -> &mut PageMeta {
        let desc = self
            .layout
            .region(region)
            .unwrap_or_else(|| panic!("no region {region}"));
        let npages = desc.used.div_ceil(PAGE_SIZE);
        let slot = &mut self.regions[region];
        let pages = slot.get_or_insert_with(|| RegionPages {
            pages: (0..npages).map(|_| PageMeta::default()).collect(),
        });
        &mut pages.pages[page]
    }
}

impl std::fmt::Debug for PageTable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let materialized = self.regions.iter().filter(|r| r.is_some()).count();
        f.debug_struct("PageTable")
            .field("regions_materialized", &materialized)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{LayoutBuilder, MemClass};

    fn table() -> (PageTable, usize) {
        let mut b = LayoutBuilder::new();
        let a = b.alloc("t", 3 * PAGE_SIZE + 100, MemClass::Shared, 12);
        let layout = b.build();
        let region = a.addr.region_index();
        (PageTable::new(layout), region)
    }

    #[test]
    fn pages_start_protected_and_clean() {
        let (mut pt, r) = table();
        assert_eq!(pt.store_probe(r, 0), WriteAccess::Fault);
        assert!(!pt.is_dirty(r, 0));
    }

    #[test]
    fn fault_creates_twin_and_grants_write() {
        let (mut pt, r) = table();
        let content = vec![7u8; PAGE_SIZE];
        pt.fault_in(r, 1, &content);
        assert_eq!(pt.store_probe(r, 1), WriteAccess::Ok);
        assert!(pt.is_dirty(r, 1));
        assert_eq!(pt.twin(r, 1).unwrap(), &content[..]);
        // Other pages unaffected.
        assert_eq!(pt.store_probe(r, 0), WriteAccess::Fault);
    }

    #[test]
    fn clean_drops_twin_and_reprotects() {
        let (mut pt, r) = table();
        pt.fault_in(r, 0, &[1u8; PAGE_SIZE]);
        pt.clean(r, 0);
        assert!(!pt.is_dirty(r, 0));
        assert_eq!(pt.store_probe(r, 0), WriteAccess::Fault);
    }

    #[test]
    fn dirty_page_enumeration() {
        let (mut pt, r) = table();
        pt.fault_in(r, 0, &[0u8; PAGE_SIZE]);
        pt.fault_in(r, 3, &[0u8; 100]); // final partial page
        assert_eq!(pt.dirty_pages_in(r, 0..4), vec![0, 3]);
        assert_eq!(pt.dirty_pages_in(r, 1..3), Vec::<usize>::new());
    }

    #[test]
    fn twin_mut_allows_update_application() {
        let (mut pt, r) = table();
        pt.fault_in(r, 2, &[0u8; PAGE_SIZE]);
        pt.twin_mut(r, 2).unwrap()[10] = 99;
        assert_eq!(pt.twin(r, 2).unwrap()[10], 99);
    }

    #[test]
    #[should_panic(expected = "fault on a writable page")]
    fn double_fault_is_a_bug() {
        let (mut pt, r) = table();
        pt.fault_in(r, 0, &[0u8; PAGE_SIZE]);
        pt.fault_in(r, 0, &[0u8; PAGE_SIZE]);
    }
}
