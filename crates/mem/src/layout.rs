//! The global region table and allocator.
//!
//! The layout is built once during application setup and is identical on
//! every processor (a real Midway program gets this property from running
//! the same binary everywhere).

use std::sync::Arc;

use crate::addr::{Addr, AddrRange, REGION_SHIFT, REGION_SIZE};

/// Classification of a region's data (paper §3.1): shared data is
/// instrumented for write detection; private data is per-processor and a
/// write to it through the shared path pays only the misclassification
/// penalty.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MemClass {
    /// Shared between all processors.
    Shared,
    /// Private to each processor.
    Private,
}

/// Identifies a region (its index in the address space).
pub type RegionId = usize;

/// Descriptor of one region.
#[derive(Clone, Debug)]
pub struct RegionDesc {
    /// The region's index; its base address is `id << REGION_SHIFT`.
    pub id: RegionId,
    /// Shared or private.
    pub class: MemClass,
    /// Cache-line size, as a shift (line size is `1 << line_shift` bytes).
    pub line_shift: u32,
    /// Bytes allocated within the region so far.
    pub used: usize,
}

impl RegionDesc {
    /// The region's base address.
    pub fn base(&self) -> Addr {
        Addr((self.id as u64) << REGION_SHIFT)
    }

    /// Cache-line size in bytes.
    pub fn line_size(&self) -> usize {
        1 << self.line_shift
    }

    /// Number of cache lines covering the used portion of the region.
    pub fn lines(&self) -> usize {
        self.used.div_ceil(self.line_size())
    }

    /// Number of pages covering the used portion of the region.
    pub fn pages(&self) -> usize {
        self.used.div_ceil(crate::addr::PAGE_SIZE)
    }
}

/// One named allocation (possibly spanning several contiguous regions).
#[derive(Clone, Debug)]
pub struct Alloc {
    /// Name, for reports and debugging.
    pub name: String,
    /// First byte.
    pub addr: Addr,
    /// Length in bytes.
    pub len: usize,
}

impl Alloc {
    /// The allocation's address range.
    pub fn range(&self) -> AddrRange {
        self.addr.raw()..self.addr.raw() + self.len as u64
    }
}

/// The immutable global region table, shared by every processor.
#[derive(Debug)]
pub struct Layout {
    regions: Vec<Option<RegionDesc>>,
    allocs: Vec<Alloc>,
}

impl Layout {
    /// Looks up the region containing `addr`.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is not inside any allocated region — the moral
    /// equivalent of a wild pointer in the original system.
    pub fn region_of(&self, addr: Addr) -> &RegionDesc {
        self.regions
            .get(addr.region_index())
            .and_then(|r| r.as_ref())
            .unwrap_or_else(|| panic!("address {addr} is outside every region"))
    }

    /// The region with index `id`, if allocated.
    pub fn region(&self, id: RegionId) -> Option<&RegionDesc> {
        self.regions.get(id).and_then(|r| r.as_ref())
    }

    /// Number of region slots (max region index + 1).
    pub fn region_slots(&self) -> usize {
        self.regions.len()
    }

    /// Iterates over all allocated regions.
    pub fn regions(&self) -> impl Iterator<Item = &RegionDesc> {
        self.regions.iter().filter_map(|r| r.as_ref())
    }

    /// All named allocations, in allocation order.
    pub fn allocs(&self) -> &[Alloc] {
        &self.allocs
    }

    /// Total bytes of shared data allocated.
    pub fn shared_bytes(&self) -> usize {
        self.regions()
            .filter(|r| r.class == MemClass::Shared)
            .map(|r| r.used)
            .sum()
    }
}

/// Builds a [`Layout`] by bump allocation.
///
/// Allocations with the same class and line size share a region until it
/// fills; an allocation larger than a region gets a run of contiguous
/// regions (lines and pages never straddle region boundaries, so
/// per-region bookkeeping still works).
pub struct LayoutBuilder {
    regions: Vec<Option<RegionDesc>>,
    allocs: Vec<Alloc>,
    /// Open region per (class, line_shift), if any: (region id).
    open: Vec<((MemClass, u32), RegionId)>,
}

impl LayoutBuilder {
    /// Creates an empty builder. Region 0 is reserved (null addresses).
    pub fn new() -> LayoutBuilder {
        LayoutBuilder {
            regions: vec![None],
            allocs: Vec::new(),
            open: Vec::new(),
        }
    }

    /// Allocates `len` bytes of `class` memory with `1 << line_shift`-byte
    /// cache lines, aligned to the line size.
    ///
    /// # Panics
    ///
    /// Panics if `line_shift` does not describe a line between 4 bytes and
    /// one page, or if `len` is zero.
    pub fn alloc(&mut self, name: &str, len: usize, class: MemClass, line_shift: u32) -> Alloc {
        assert!(len > 0, "zero-length allocation {name:?}");
        assert!(
            (2..=crate::addr::PAGE_SHIFT).contains(&line_shift),
            "line shift {line_shift} out of range (4 bytes ..= one page)"
        );
        let line = 1usize << line_shift;
        let addr = if len > REGION_SIZE {
            self.alloc_region_run(len, class, line_shift)
        } else {
            self.alloc_within_region(len, line, class, line_shift)
        };
        let alloc = Alloc {
            name: name.to_string(),
            addr,
            len,
        };
        self.allocs.push(alloc.clone());
        alloc
    }

    /// Finishes the layout.
    pub fn build(self) -> Arc<Layout> {
        Arc::new(Layout {
            regions: self.regions,
            allocs: self.allocs,
        })
    }

    fn alloc_within_region(
        &mut self,
        len: usize,
        line: usize,
        class: MemClass,
        line_shift: u32,
    ) -> Addr {
        let key = (class, line_shift);
        let open_id = self.open.iter().find(|(k, _)| *k == key).map(|(_, id)| *id);
        if let Some(id) = open_id {
            let desc = self.regions[id].as_mut().expect("open region exists");
            let start = desc.used.next_multiple_of(line);
            if start + len <= REGION_SIZE {
                desc.used = start + len;
                return desc.base() + start as u64;
            }
        }
        // Open a fresh region for this (class, line) combination.
        let id = self.push_region(class, line_shift, len);
        self.open.retain(|(k, _)| *k != key);
        self.open.push((key, id));
        Addr((id as u64) << REGION_SHIFT)
    }

    fn alloc_region_run(&mut self, len: usize, class: MemClass, line_shift: u32) -> Addr {
        let first = self.regions.len();
        let mut remaining = len;
        while remaining > 0 {
            let used = remaining.min(REGION_SIZE);
            self.push_region(class, line_shift, used);
            remaining -= used;
        }
        Addr((first as u64) << REGION_SHIFT)
    }

    fn push_region(&mut self, class: MemClass, line_shift: u32, used: usize) -> RegionId {
        let id = self.regions.len();
        self.regions.push(Some(RegionDesc {
            id,
            class,
            line_shift,
            used,
        }));
        id
    }
}

impl Default for LayoutBuilder {
    fn default() -> Self {
        LayoutBuilder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocations_share_compatible_regions() {
        let mut b = LayoutBuilder::new();
        let a = b.alloc("a", 100, MemClass::Shared, 3);
        let c = b.alloc("c", 100, MemClass::Shared, 3);
        let layout = b.build();
        assert_eq!(a.addr.region_index(), c.addr.region_index());
        // Second allocation is line-aligned after the first.
        assert_eq!(c.addr.raw(), a.addr.raw() + 104);
        assert_eq!(layout.region_of(a.addr).used, 204);
    }

    #[test]
    fn different_line_sizes_get_different_regions() {
        let mut b = LayoutBuilder::new();
        let a = b.alloc("a", 100, MemClass::Shared, 3);
        let c = b.alloc("c", 100, MemClass::Shared, 6);
        assert_ne!(a.addr.region_index(), c.addr.region_index());
    }

    #[test]
    fn private_and_shared_never_mix() {
        let mut b = LayoutBuilder::new();
        let a = b.alloc("a", 100, MemClass::Shared, 3);
        let p = b.alloc("p", 100, MemClass::Private, 3);
        let layout = b.build();
        assert_ne!(a.addr.region_index(), p.addr.region_index());
        assert_eq!(layout.region_of(p.addr).class, MemClass::Private);
    }

    #[test]
    fn huge_allocation_spans_contiguous_regions() {
        let mut b = LayoutBuilder::new();
        let big = b.alloc("big", REGION_SIZE * 2 + 10, MemClass::Shared, 12);
        let layout = b.build();
        let first = big.addr.region_index();
        assert!(layout.region(first).is_some());
        assert!(layout.region(first + 1).is_some());
        assert_eq!(layout.region(first + 2).unwrap().used, 10);
        assert_eq!(big.addr.region_offset(), 0);
    }

    #[test]
    fn shared_bytes_counts_only_shared_regions() {
        let mut b = LayoutBuilder::new();
        b.alloc("s", 1000, MemClass::Shared, 3);
        b.alloc("p", 5000, MemClass::Private, 3);
        let layout = b.build();
        assert_eq!(layout.shared_bytes(), 1000);
    }

    #[test]
    #[should_panic(expected = "outside every region")]
    fn wild_address_panics() {
        let layout = LayoutBuilder::new().build();
        layout.region_of(Addr(0x1234));
    }

    #[test]
    fn full_region_rolls_over() {
        let mut b = LayoutBuilder::new();
        let a = b.alloc("a", REGION_SIZE - 4, MemClass::Shared, 2);
        let c = b.alloc("c", 64, MemClass::Shared, 2);
        assert_ne!(a.addr.region_index(), c.addr.region_index());
    }
}
