//! Memory substrate for the Midway DSM reproduction.
//!
//! The paper (§3.1) partitions the application's virtual address space into
//! large fixed-size *regions*; data within a region is either shared or
//! private, shared regions are divided into software *cache lines*, and
//! every cache line has a per-processor *dirtybit*. The first page of each
//! region holds a code template that sets the dirtybit for an address in
//! that region.
//!
//! This crate models all of that:
//!
//! * [`Layout`]/[`LayoutBuilder`] — the global region table and allocator
//!   (built once, identical on every processor).
//! * [`LocalStore`] — one processor's cached copy of the shared address
//!   space (each processor caches data locally; an update protocol keeps
//!   copies consistent).
//! * [`DirtyBits`]/[`Template`] — timestamp dirtybits and the per-region
//!   dirtybit-update template of Appendix A.
//! * [`PageTable`] — the simulated virtual-memory state used by VM-DSM:
//!   per-page protection, write faults, and *twins*.
//! * [`diff`] — the word-granularity page diffing used by VM-DSM's write
//!   collection.

mod addr;
pub mod diff;
mod dirty;
mod layout;
mod paging;
mod pool;
mod store;

pub use addr::{
    split_by_region, Addr, AddrRange, PAGE_SHIFT, PAGE_SIZE, REGION_SHIFT, REGION_SIZE,
};
pub use dirty::{DirtyBits, ScanOutcome, StoreKind, Template, DIRTY, EPOCH};
pub use layout::{Alloc, Layout, LayoutBuilder, MemClass, RegionDesc, RegionId};
pub use paging::{PageTable, WriteAccess};
pub use pool::BufPool;
pub use store::LocalStore;
