//! Virtual addresses and the region/page geometry.

use std::fmt;
use std::ops::{Add, Range};

/// Regions are 4 MiB: large and fixed-size, as in the paper, so the base of
/// a region (where its dirtybit template lives) is computable by masking
/// the low-order bits of any address inside it.
pub const REGION_SHIFT: u32 = 22;
/// Region size in bytes.
pub const REGION_SIZE: usize = 1 << REGION_SHIFT;
/// Pages are 4 KB, the paper's DECstation page size.
pub const PAGE_SHIFT: u32 = 12;
/// Page size in bytes.
pub const PAGE_SIZE: usize = 1 << PAGE_SHIFT;

/// A virtual address in the shared (or private) address space.
///
/// Addresses are global: the same address names the same datum on every
/// processor, which is what lets the consistency protocol ship `(address,
/// bytes)` updates.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(pub u64);

impl Addr {
    /// The region index containing this address.
    pub fn region_index(self) -> usize {
        (self.0 >> REGION_SHIFT) as usize
    }

    /// The base address of the containing region (the paper's mask trick).
    pub fn region_base(self) -> Addr {
        Addr(self.0 & !((REGION_SIZE as u64) - 1))
    }

    /// Byte offset within the containing region.
    pub fn region_offset(self) -> usize {
        (self.0 & ((REGION_SIZE as u64) - 1)) as usize
    }

    /// Page index within the containing region.
    pub fn page_in_region(self) -> usize {
        self.region_offset() >> PAGE_SHIFT
    }

    /// Byte offset within the containing page.
    pub fn page_offset(self) -> usize {
        (self.0 & ((PAGE_SIZE as u64) - 1)) as usize
    }

    /// Cache-line index within the containing region, for lines of
    /// `1 << line_shift` bytes.
    pub fn line_in_region(self, line_shift: u32) -> usize {
        self.region_offset() >> line_shift
    }

    /// The raw address value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl Add<u64> for Addr {
    type Output = Addr;

    fn add(self, rhs: u64) -> Addr {
        Addr(self.0 + rhs)
    }
}

impl fmt::Debug for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "0x{:x}", self.0)
    }
}

/// A contiguous byte range of the address space.
pub type AddrRange = Range<u64>;

/// Splits `range` at region boundaries, yielding per-region subranges.
///
/// Cache lines and pages never straddle regions (both divide the region
/// size), so most per-region logic iterates these pieces.
pub fn split_by_region(range: AddrRange) -> impl Iterator<Item = AddrRange> {
    let mut cur = range.start;
    let end = range.end;
    std::iter::from_fn(move || {
        if cur >= end {
            return None;
        }
        let region_end = (cur | (REGION_SIZE as u64 - 1)) + 1;
        let piece_end = region_end.min(end);
        let piece = cur..piece_end;
        cur = piece_end;
        Some(piece)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn region_geometry() {
        let a = Addr((3 << REGION_SHIFT) + 0x1234);
        assert_eq!(a.region_index(), 3);
        assert_eq!(a.region_base().raw(), 3 << REGION_SHIFT);
        assert_eq!(a.region_offset(), 0x1234);
        assert_eq!(a.page_in_region(), 1);
        assert_eq!(a.page_offset(), 0x234);
    }

    #[test]
    fn line_indexing_uses_line_shift() {
        let a = Addr((1 << REGION_SHIFT) + 64);
        assert_eq!(a.line_in_region(3), 8); // 8-byte lines
        assert_eq!(a.line_in_region(6), 1); // 64-byte lines
        assert_eq!(a.line_in_region(12), 0); // page-size lines
    }

    #[test]
    fn split_by_region_handles_straddles() {
        let start = (1 << REGION_SHIFT) as u64 + REGION_SIZE as u64 - 100;
        let pieces: Vec<_> = split_by_region(start..start + 300).collect();
        assert_eq!(pieces.len(), 2);
        assert_eq!(pieces[0], start..start + 100);
        assert_eq!(pieces[1], start + 100..start + 300);
    }

    #[test]
    fn split_by_region_passes_through_contained_ranges() {
        let base = (2 << REGION_SHIFT) as u64;
        let pieces: Vec<_> = split_by_region(base + 8..base + 128).collect();
        assert_eq!(pieces, vec![base + 8..base + 128]);
        assert_eq!(split_by_region(base..base).count(), 0);
    }
}
