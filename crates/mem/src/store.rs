//! A processor's local cached copy of the address space.

use std::sync::Arc;

use crate::addr::Addr;
use crate::layout::Layout;

/// One processor's backing memory.
///
/// Every processor caches shared data locally (the DSM's update protocol
/// keeps caches consistent at synchronization points), so a `LocalStore`
/// holds a full copy of each region's used bytes, materialized lazily and
/// zero-filled — matching the zero-initialized heap the applications assume.
pub struct LocalStore {
    layout: Arc<Layout>,
    regions: Vec<Option<Box<[u8]>>>,
}

impl LocalStore {
    /// Creates an empty store over `layout`.
    pub fn new(layout: Arc<Layout>) -> LocalStore {
        let slots = layout.region_slots();
        LocalStore {
            layout,
            regions: (0..slots).map(|_| None).collect(),
        }
    }

    /// The layout this store is built over.
    pub fn layout(&self) -> &Arc<Layout> {
        &self.layout
    }

    /// The materialized bytes of region `id`, or `None` if the region has
    /// never been touched (and therefore still reads as zeros). Lets a
    /// checkpoint writer serialize exactly the regions that carry content
    /// without materializing the rest.
    pub fn region_data(&self, id: usize) -> Option<&[u8]> {
        self.regions.get(id).and_then(|r| r.as_deref())
    }

    /// Immutable bytes at `[addr, addr + len)`.
    ///
    /// # Panics
    ///
    /// Panics if the range leaves the containing region's used bytes
    /// (ranges spanning regions must be split by the caller with
    /// [`crate::split_by_region`]).
    pub fn bytes(&mut self, addr: Addr, len: usize) -> &[u8] {
        let (region, off) = self.locate(addr, len);
        &region[off..off + len]
    }

    /// Mutable bytes at `[addr, addr + len)`.
    ///
    /// # Panics
    ///
    /// As for [`bytes`](Self::bytes).
    pub fn bytes_mut(&mut self, addr: Addr, len: usize) -> &mut [u8] {
        let (region, off) = self.locate(addr, len);
        &mut region[off..off + len]
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&mut self, addr: Addr) -> u32 {
        u32::from_le_bytes(self.bytes(addr, 4).try_into().expect("4 bytes"))
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: Addr, v: u32) {
        self.bytes_mut(addr, 4).copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&mut self, addr: Addr) -> u64 {
        u64::from_le_bytes(self.bytes(addr, 8).try_into().expect("8 bytes"))
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: Addr, v: u64) {
        self.bytes_mut(addr, 8).copy_from_slice(&v.to_le_bytes());
    }

    /// Reads a little-endian `f64`.
    pub fn read_f64(&mut self, addr: Addr) -> f64 {
        f64::from_bits(self.read_u64(addr))
    }

    /// Writes a little-endian `f64`.
    pub fn write_f64(&mut self, addr: Addr, v: f64) {
        self.write_u64(addr, v.to_bits());
    }

    /// Reads a little-endian `i32`.
    pub fn read_i32(&mut self, addr: Addr) -> i32 {
        self.read_u32(addr) as i32
    }

    /// Writes a little-endian `i32`.
    pub fn write_i32(&mut self, addr: Addr, v: i32) {
        self.write_u32(addr, v as u32);
    }

    /// Copies `src` into memory at `addr`.
    pub fn write_bytes(&mut self, addr: Addr, src: &[u8]) {
        self.bytes_mut(addr, src.len()).copy_from_slice(src);
    }

    /// FNV-1a 64 digest of the store's logical content: every region's
    /// used bytes in address order, with unmaterialized regions hashed as
    /// the zeros they would read as. Two stores with the same logical
    /// content digest identically regardless of which regions happen to
    /// be materialized — the final-memory-state equivalence check the
    /// fault-tolerance oracle relies on.
    pub fn digest(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        // FNV-1a folds a zero byte as `hash ^= 0; hash *= PRIME`, i.e. a
        // bare multiply — so a run of n zero bytes is one multiply by
        // PRIME^n, which lets all-zero blocks of materialized regions
        // and whole unmaterialized regions skip the byte loop while
        // producing the exact same digest. The block test runs 64 bytes
        // at a time as eight OR-reduced `u64` lanes (vectorizable), with
        // an 8-byte-chunk fallback inside a mixed block.
        const PRIME8: u64 = {
            let mut p = 1u64;
            let mut i = 0;
            while i < 8 {
                p = p.wrapping_mul(PRIME);
                i += 1;
            }
            p
        };
        const PRIME64: u64 = {
            let mut p = 1u64;
            let mut i = 0;
            while i < 64 {
                p = p.wrapping_mul(PRIME);
                i += 1;
            }
            p
        };
        fn prime_pow(mut n: u64) -> u64 {
            let mut base = PRIME;
            let mut acc = 1u64;
            while n > 0 {
                if n & 1 == 1 {
                    acc = acc.wrapping_mul(base);
                }
                base = base.wrapping_mul(base);
                n >>= 1;
            }
            acc
        }
        let mut hash = OFFSET;
        let eat = |hash: &mut u64, b: u8| {
            *hash ^= u64::from(b);
            *hash = hash.wrapping_mul(PRIME);
        };
        for (idx, slot) in self.regions.iter().enumerate() {
            let used = self.layout.region(idx).map_or(0, |d| d.used);
            for b in (idx as u64).to_le_bytes() {
                eat(&mut hash, b);
            }
            match slot {
                Some(region) => {
                    let mut blocks = region.chunks_exact(64);
                    for block in &mut blocks {
                        let block: &[u8; 64] = block.try_into().expect("64 bytes");
                        let mut any = 0u64;
                        for l in 0..8 {
                            any |= u64::from_ne_bytes(
                                block[l * 8..l * 8 + 8].try_into().expect("8 bytes"),
                            );
                        }
                        if any == 0 {
                            hash = hash.wrapping_mul(PRIME64);
                            continue;
                        }
                        for chunk in block.chunks_exact(8) {
                            if u64::from_ne_bytes(chunk.try_into().expect("8 bytes")) == 0 {
                                hash = hash.wrapping_mul(PRIME8);
                            } else {
                                for &b in chunk {
                                    eat(&mut hash, b);
                                }
                            }
                        }
                    }
                    let mut chunks = blocks.remainder().chunks_exact(8);
                    for chunk in &mut chunks {
                        if u64::from_ne_bytes(chunk.try_into().expect("8 bytes")) == 0 {
                            hash = hash.wrapping_mul(PRIME8);
                        } else {
                            for &b in chunk {
                                eat(&mut hash, b);
                            }
                        }
                    }
                    for &b in chunks.remainder() {
                        eat(&mut hash, b);
                    }
                }
                None => {
                    hash = hash.wrapping_mul(prime_pow(used as u64));
                }
            }
        }
        hash
    }

    /// The byte-at-a-time reference implementation of
    /// [`digest`](LocalStore::digest), kept as the equivalence oracle for
    /// the chunked hot path.
    pub fn digest_reference(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        let mut eat = |b: u8| {
            hash ^= u64::from(b);
            hash = hash.wrapping_mul(PRIME);
        };
        for (idx, slot) in self.regions.iter().enumerate() {
            let used = self.layout.region(idx).map_or(0, |d| d.used);
            for b in (idx as u64).to_le_bytes() {
                eat(b);
            }
            match slot {
                Some(region) => {
                    for &b in region.iter() {
                        eat(b);
                    }
                }
                None => {
                    for _ in 0..used {
                        eat(0);
                    }
                }
            }
        }
        hash
    }

    fn locate(&mut self, addr: Addr, len: usize) -> (&mut Box<[u8]>, usize) {
        let idx = addr.region_index();
        let desc = self.layout.region(idx).unwrap_or_else(|| {
            panic!("address {addr} is outside every region");
        });
        let off = addr.region_offset();
        assert!(
            off + len <= desc.used,
            "access [{addr}, +{len}) overruns region {idx} (used {})",
            desc.used
        );
        let used = desc.used;
        let slot = &mut self.regions[idx];
        let region = slot.get_or_insert_with(|| vec![0u8; used].into_boxed_slice());
        // A region may have been materialized when fewer bytes were used if
        // the layout were mutable; layouts are immutable so sizes agree.
        debug_assert_eq!(region.len(), used);
        (region, off)
    }
}

impl std::fmt::Debug for LocalStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let materialized = self.regions.iter().filter(|r| r.is_some()).count();
        f.debug_struct("LocalStore")
            .field("regions_materialized", &materialized)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::{LayoutBuilder, MemClass};

    fn store_with(len: usize) -> (LocalStore, Addr) {
        let mut b = LayoutBuilder::new();
        let a = b.alloc("t", len, MemClass::Shared, 3);
        (LocalStore::new(b.build()), a.addr)
    }

    #[test]
    fn memory_starts_zeroed() {
        let (mut s, a) = store_with(64);
        assert_eq!(s.read_u64(a), 0);
        assert_eq!(s.read_f64(a + 8), 0.0);
    }

    #[test]
    fn typed_round_trips() {
        let (mut s, a) = store_with(64);
        s.write_u32(a, 0xDEAD_BEEF);
        s.write_f64(a + 8, -2.5);
        s.write_i32(a + 16, -7);
        s.write_u64(a + 24, u64::MAX);
        assert_eq!(s.read_u32(a), 0xDEAD_BEEF);
        assert_eq!(s.read_f64(a + 8), -2.5);
        assert_eq!(s.read_i32(a + 16), -7);
        assert_eq!(s.read_u64(a + 24), u64::MAX);
    }

    #[test]
    fn bulk_bytes_round_trip() {
        let (mut s, a) = store_with(128);
        let src: Vec<u8> = (0..100).collect();
        s.write_bytes(a + 10, &src);
        assert_eq!(s.bytes(a + 10, 100), &src[..]);
        // Neighbours untouched.
        assert_eq!(s.read_u64(a), 0);
    }

    #[test]
    #[should_panic(expected = "overruns region")]
    fn overrun_is_caught() {
        let (mut s, a) = store_with(16);
        s.write_u64(a + 12, 1);
    }

    #[test]
    fn digest_ignores_materialization_but_sees_content() {
        let mut b = LayoutBuilder::new();
        let a = b.alloc("t", 64, MemClass::Shared, 3);
        let layout = b.build();
        let zero = LocalStore::new(Arc::clone(&layout));
        let mut touched = LocalStore::new(Arc::clone(&layout));
        // Materialize by reading zeros: logically identical content.
        assert_eq!(touched.read_u64(a.addr), 0);
        assert_eq!(zero.digest(), touched.digest());
        let mut written = LocalStore::new(layout);
        written.write_u64(a.addr, 42);
        assert_ne!(zero.digest(), written.digest());
        written.write_u64(a.addr, 0);
        assert_eq!(zero.digest(), written.digest());
    }

    #[test]
    fn chunked_digest_matches_reference() {
        // Region sizes chosen to exercise the 8-byte chunk remainder, the
        // all-zero chunk fast path, and the unmaterialized power-of-PRIME
        // path all at once.
        let mut b = LayoutBuilder::new();
        let a = b.alloc("a", 100, MemClass::Shared, 3); // 12 chunks + 4 tail
        let c = b.alloc("b", 64, MemClass::Shared, 3);
        let _untouched = b.alloc("c", 37, MemClass::Private, 3);
        let layout = b.build();
        let mut s = LocalStore::new(layout);
        assert_eq!(s.digest(), s.digest_reference());
        s.write_u64(a.addr + 16, 0xDEAD_BEEF_0123_4567);
        s.write_bytes(a.addr + 95, &[1, 2, 3, 4, 5]); // dirties the tail
        s.write_u32(c.addr + 60, 7);
        assert_eq!(s.digest(), s.digest_reference());
        // Zeroing back still agrees (all-zero chunks now materialized).
        s.write_u64(a.addr + 16, 0);
        assert_eq!(s.digest(), s.digest_reference());
    }

    #[test]
    fn stores_are_independent_per_processor() {
        let mut b = LayoutBuilder::new();
        let a = b.alloc("t", 64, MemClass::Shared, 3);
        let layout = b.build();
        let mut p0 = LocalStore::new(Arc::clone(&layout));
        let mut p1 = LocalStore::new(layout);
        p0.write_u64(a.addr, 42);
        assert_eq!(
            p1.read_u64(a.addr),
            0,
            "no magic coherence without the protocol"
        );
    }
}
