//! A freelist of byte buffers for the send→wire→apply hot path.
//!
//! The collection loops build an `UpdateItem` per coalesced run, ship it,
//! and drop it at the receiver — a `Vec<u8>` allocation and free per item
//! per message. The pool closes that loop: consumers return spent buffers
//! with [`BufPool::put`] and producers draw warm ones with
//! [`BufPool::get`], so steady-state collection recycles capacity instead
//! of round-tripping the allocator.
//!
//! A recycled buffer is always handed out *empty* (`put` truncates to
//! zero length), so a producer that only ever `extend`s can never observe
//! another message's bytes — the stale-data safety property the pool
//! tests pin down.

/// A LIFO freelist of `Vec<u8>` buffers with hit/miss accounting.
#[derive(Debug, Default)]
pub struct BufPool {
    free: Vec<Vec<u8>>,
    /// Buffers served from the freelist (an allocation avoided).
    pub hits: u64,
    /// Buffers that had to be freshly allocated.
    pub misses: u64,
}

/// Buffers retained at most; beyond this, `put` lets the buffer drop.
/// Sized for the deepest in-flight population the protocol produces (one
/// grant's items plus the next collection in progress).
const CAP: usize = 256;

impl BufPool {
    /// An empty pool.
    pub fn new() -> BufPool {
        BufPool::default()
    }

    /// An empty buffer: recycled (warm capacity) when one is available,
    /// freshly allocated otherwise.
    pub fn get(&mut self) -> Vec<u8> {
        match self.free.pop() {
            Some(buf) => {
                debug_assert!(buf.is_empty(), "pooled buffers are stored empty");
                self.hits += 1;
                buf
            }
            None => {
                self.misses += 1;
                Vec::new()
            }
        }
    }

    /// Like [`get`](Self::get), but guarantees room for `len` bytes
    /// without further growth.
    pub fn get_with_capacity(&mut self, len: usize) -> Vec<u8> {
        let mut buf = self.get();
        buf.reserve(len);
        buf
    }

    /// Returns a spent buffer to the freelist. The buffer is truncated to
    /// zero length *here*, so everything in the freelist is empty and no
    /// later `get` can leak a previous message's bytes.
    pub fn put(&mut self, mut buf: Vec<u8>) {
        if self.free.len() >= CAP || buf.capacity() == 0 {
            return;
        }
        buf.clear();
        self.free.push(buf);
    }

    /// Buffers currently waiting in the freelist.
    pub fn available(&self) -> usize {
        self.free.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_put_recycles_capacity() {
        let mut p = BufPool::new();
        let mut a = p.get();
        assert_eq!(p.misses, 1);
        a.extend_from_slice(&[1, 2, 3, 4]);
        let cap = a.capacity();
        p.put(a);
        let b = p.get();
        assert_eq!(p.hits, 1);
        assert!(b.is_empty(), "recycled buffer must come back empty");
        assert_eq!(b.capacity(), cap, "capacity survives the round trip");
    }

    #[test]
    fn recycled_buffers_never_leak_stale_bytes() {
        let mut p = BufPool::new();
        // Fill a buffer with a sentinel pattern and recycle it.
        let mut a = p.get_with_capacity(64);
        a.extend_from_slice(&[0xAB; 64]);
        p.put(a);
        // A shorter message through the same buffer must contain exactly
        // its own bytes — length 3, no trailing sentinel.
        let mut b = p.get();
        b.extend_from_slice(&[1, 2, 3]);
        assert_eq!(b, vec![1, 2, 3]);
        assert_eq!(b.len(), 3);
    }

    #[test]
    fn pool_is_bounded() {
        let mut p = BufPool::new();
        for _ in 0..2 * CAP {
            p.put(vec![1u8]);
        }
        assert_eq!(p.available(), CAP);
    }

    #[test]
    fn zero_capacity_buffers_are_not_pooled() {
        let mut p = BufPool::new();
        p.put(Vec::new());
        assert_eq!(p.available(), 0);
    }
}
