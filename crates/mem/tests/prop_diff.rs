//! Property-based tests for the diff engine.

use midway_mem::diff::{PageDiff, WORD};
use proptest::prelude::*;

fn page_pair() -> impl Strategy<Value = (Vec<u8>, Vec<u8>)> {
    (1usize..=512).prop_flat_map(|len| {
        (
            proptest::collection::vec(any::<u8>(), len),
            proptest::collection::vec(any::<u8>(), len),
        )
    })
}

proptest! {
    /// `apply(compute(cur, twin), twin) == cur` for arbitrary contents.
    #[test]
    fn compute_apply_round_trips((cur, twin) in page_pair()) {
        let diff = PageDiff::compute(&cur, &twin);
        let mut rebuilt = twin.clone();
        diff.apply(&mut rebuilt);
        prop_assert_eq!(rebuilt, cur);
    }

    /// Runs are maximal, ordered and word-aligned at the start.
    #[test]
    fn runs_are_canonical((cur, twin) in page_pair()) {
        let diff = PageDiff::compute(&cur, &twin);
        let mut prev_end = None;
        for run in &diff.runs {
            prop_assert_eq!(run.offset % WORD, 0, "runs start on word boundaries");
            prop_assert!(!run.data.is_empty());
            if let Some(end) = prev_end {
                prop_assert!(run.offset > end, "runs are ordered and non-adjacent");
            }
            prev_end = Some(run.offset + run.data.len());
        }
    }

    /// A diff restricted to ranges covers exactly the intersection bytes,
    /// and `covered_by` agrees with the restriction being lossless.
    #[test]
    fn restrict_is_an_intersection(
        (cur, twin) in page_pair(),
        cut in 0usize..512,
    ) {
        let len = cur.len();
        let ranges = vec![0..cut.min(len)];
        let diff = PageDiff::compute(&cur, &twin);
        let restricted = diff.restrict(&ranges);
        for run in &restricted.runs {
            prop_assert!(run.offset + run.data.len() <= cut.min(len));
        }
        let lossless = restricted.changed_bytes() == diff.changed_bytes();
        prop_assert_eq!(diff.covered_by(&ranges), lossless);
        // Applying the restricted diff to the twin makes the prefix match.
        let mut rebuilt = twin.clone();
        restricted.apply(&mut rebuilt);
        let boundary = cut.min(len);
        // Word granularity may pull in up to WORD-1 bytes past the cut.
        let safe = boundary.saturating_sub(boundary % WORD);
        prop_assert_eq!(&rebuilt[..safe], &cur[..safe]);
    }

    /// The wire size is data plus one header per run.
    #[test]
    fn wire_size_accounting((cur, twin) in page_pair()) {
        let diff = PageDiff::compute(&cur, &twin);
        prop_assert_eq!(
            diff.wire_size(),
            diff.changed_bytes() + diff.run_count() * midway_mem::diff::RUN_HEADER_BYTES
        );
    }
}
