//! Randomized tests for the diff engine, driven by the internal
//! [`SplitMix64`] generator so the workspace tests offline. Every case
//! derives from a fixed seed and is exactly reproducible.

use midway_mem::diff::{PageDiff, WORD};
use midway_sim::SplitMix64;

/// A random `(current, twin)` page pair of equal length in `1..=512`.
/// Bytes are drawn from a small alphabet so equal words are common and
/// the diffs contain a mix of runs and gaps.
fn page_pair(rng: &mut SplitMix64) -> (Vec<u8>, Vec<u8>) {
    let len = 1 + rng.next_below(512) as usize;
    let page = |rng: &mut SplitMix64| (0..len).map(|_| rng.next_below(4) as u8).collect();
    (page(rng), page(rng))
}

/// `apply(compute(cur, twin), twin) == cur` for arbitrary contents.
#[test]
fn compute_apply_round_trips() {
    let mut rng = SplitMix64::new(0xd1ff_0001);
    for case in 0..256 {
        let (cur, twin) = page_pair(&mut rng);
        let diff = PageDiff::compute(&cur, &twin);
        let mut rebuilt = twin.clone();
        diff.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur, "case {case}");
    }
}

/// Runs are maximal, ordered and word-aligned at the start.
#[test]
fn runs_are_canonical() {
    let mut rng = SplitMix64::new(0xd1ff_0002);
    for case in 0..256 {
        let (cur, twin) = page_pair(&mut rng);
        let diff = PageDiff::compute(&cur, &twin);
        let mut prev_end = None;
        for run in &diff.runs {
            assert_eq!(run.offset % WORD, 0, "runs start on word boundaries");
            assert!(!run.data.is_empty(), "case {case}");
            if let Some(end) = prev_end {
                assert!(run.offset > end, "runs are ordered and non-adjacent");
            }
            prev_end = Some(run.offset + run.data.len());
        }
    }
}

/// A diff restricted to ranges covers exactly the intersection bytes,
/// and `covered_by` agrees with the restriction being lossless.
#[test]
fn restrict_is_an_intersection() {
    let mut rng = SplitMix64::new(0xd1ff_0003);
    for case in 0..256 {
        let (cur, twin) = page_pair(&mut rng);
        let cut = rng.next_below(512) as usize;
        let len = cur.len();
        let prefix = 0..cut.min(len);
        let ranges = vec![prefix];
        let diff = PageDiff::compute(&cur, &twin);
        let restricted = diff.restrict(&ranges);
        for run in &restricted.runs {
            assert!(run.offset + run.data.len() <= cut.min(len), "case {case}");
        }
        let lossless = restricted.changed_bytes() == diff.changed_bytes();
        assert_eq!(diff.covered_by(&ranges), lossless, "case {case}");
        // Applying the restricted diff to the twin makes the prefix match.
        let mut rebuilt = twin.clone();
        restricted.apply(&mut rebuilt);
        let boundary = cut.min(len);
        // Word granularity may pull in up to WORD-1 bytes past the cut.
        let safe = boundary.saturating_sub(boundary % WORD);
        assert_eq!(&rebuilt[..safe], &cur[..safe], "case {case}");
    }
}

/// The wire size is data plus one header per run.
#[test]
fn wire_size_accounting() {
    let mut rng = SplitMix64::new(0xd1ff_0004);
    for case in 0..256 {
        let (cur, twin) = page_pair(&mut rng);
        let diff = PageDiff::compute(&cur, &twin);
        assert_eq!(
            diff.wire_size(),
            diff.changed_bytes() + diff.run_count() * midway_mem::diff::RUN_HEADER_BYTES,
            "case {case}"
        );
    }
}
