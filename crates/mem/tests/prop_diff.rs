//! Randomized tests for the diff engine, driven by the internal
//! [`SplitMix64`] generator so the workspace tests offline. Every case
//! derives from a fixed seed and is exactly reproducible.

use midway_mem::diff::{PageDiff, WORD};
use midway_mem::{DirtyBits, EPOCH};
use midway_sim::SplitMix64;

/// A random `(current, twin)` page pair of equal length in `1..=512`.
/// Bytes are drawn from a small alphabet so equal words are common and
/// the diffs contain a mix of runs and gaps.
fn page_pair(rng: &mut SplitMix64) -> (Vec<u8>, Vec<u8>) {
    let len = 1 + rng.next_below(512) as usize;
    let page = |rng: &mut SplitMix64| (0..len).map(|_| rng.next_below(4) as u8).collect();
    (page(rng), page(rng))
}

/// `apply(compute(cur, twin), twin) == cur` for arbitrary contents.
#[test]
fn compute_apply_round_trips() {
    let mut rng = SplitMix64::new(0xd1ff_0001);
    for case in 0..256 {
        let (cur, twin) = page_pair(&mut rng);
        let diff = PageDiff::compute(&cur, &twin);
        let mut rebuilt = twin.clone();
        diff.apply(&mut rebuilt);
        assert_eq!(rebuilt, cur, "case {case}");
    }
}

/// Runs are maximal, ordered and word-aligned at the start.
#[test]
fn runs_are_canonical() {
    let mut rng = SplitMix64::new(0xd1ff_0002);
    for case in 0..256 {
        let (cur, twin) = page_pair(&mut rng);
        let diff = PageDiff::compute(&cur, &twin);
        let mut prev_end = None;
        for run in &diff.runs {
            assert_eq!(run.offset % WORD, 0, "runs start on word boundaries");
            assert!(!run.data.is_empty(), "case {case}");
            if let Some(end) = prev_end {
                assert!(run.offset > end, "runs are ordered and non-adjacent");
            }
            prev_end = Some(run.offset + run.data.len());
        }
    }
}

/// A diff restricted to ranges covers exactly the intersection bytes,
/// and `covered_by` agrees with the restriction being lossless.
#[test]
fn restrict_is_an_intersection() {
    let mut rng = SplitMix64::new(0xd1ff_0003);
    for case in 0..256 {
        let (cur, twin) = page_pair(&mut rng);
        let cut = rng.next_below(512) as usize;
        let len = cur.len();
        let prefix = 0..cut.min(len);
        let ranges = vec![prefix];
        let diff = PageDiff::compute(&cur, &twin);
        let restricted = diff.restrict(&ranges);
        for run in &restricted.runs {
            assert!(run.offset + run.data.len() <= cut.min(len), "case {case}");
        }
        let lossless = restricted.changed_bytes() == diff.changed_bytes();
        assert_eq!(diff.covered_by(&ranges), lossless, "case {case}");
        // Applying the restricted diff to the twin makes the prefix match.
        let mut rebuilt = twin.clone();
        restricted.apply(&mut rebuilt);
        let boundary = cut.min(len);
        // Word granularity may pull in up to WORD-1 bytes past the cut.
        let safe = boundary.saturating_sub(boundary % WORD);
        assert_eq!(&rebuilt[..safe], &cur[..safe], "case {case}");
    }
}

/// The chunked `PageDiff::compute` is byte-for-byte equivalent to the
/// byte-at-a-time reference implementation: same runs, same offsets, same
/// data, over random page/twin pairs with varied lengths (exercising
/// partial tail chunks and tail words) and both dense and sparse change
/// patterns.
#[test]
fn chunked_compute_matches_reference() {
    let mut rng = SplitMix64::new(0xd1ff_0005);
    for case in 0..512 {
        // Lengths deliberately spread around chunk (16) and word (4)
        // boundaries, up to several KiB.
        let len = 1 + rng.next_below(4096) as usize;
        let twin: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
        let mut cur = twin.clone();
        match case % 3 {
            // Sparse: a handful of scattered single-byte changes.
            0 => {
                for _ in 0..1 + rng.next_below(8) {
                    let i = rng.next_below(len as u64) as usize;
                    cur[i] ^= 1 + rng.next_below(255) as u8;
                }
            }
            // Dense: most bytes redrawn.
            1 => {
                for b in cur.iter_mut() {
                    if rng.next_below(4) != 0 {
                        *b = rng.next_below(256) as u8;
                    }
                }
            }
            // One contiguous dirty span (the common write pattern).
            _ => {
                let start = rng.next_below(len as u64) as usize;
                let span = 1 + rng.next_below((len - start) as u64) as usize;
                for b in &mut cur[start..start + span] {
                    *b = rng.next_below(256) as u8;
                }
            }
        }
        let chunked = PageDiff::compute(&cur, &twin);
        let reference = PageDiff::compute_reference(&cur, &twin);
        assert_eq!(chunked, reference, "case {case}, len {len}");
    }
}

/// Pins the widened compute at exact block seams: lengths placed around
/// the 64-byte lane width and 8-byte word width, with changes at the
/// first byte, the last byte, and straddling each seam — the places an
/// off-by-one in the lane/tail split would hide.
#[test]
fn block_seam_lengths_match_reference() {
    let mut rng = SplitMix64::new(0xd1ff_0007);
    let lens = [
        1usize, 7, 8, 9, 15, 16, 17, 31, 32, 33, 63, 64, 65, 71, 72, 73, 127, 128, 129, 191, 192,
        193, 255, 256, 257, 4095, 4096,
    ];
    for &len in &lens {
        let twin: Vec<u8> = (0..len).map(|_| rng.next_below(256) as u8).collect();
        let mut positions = vec![0, len - 1, len / 2];
        // Every lane/word seam inside the page, plus a span straddling it.
        for seam in (8..len).step_by(8) {
            positions.push(seam - 1);
            positions.push(seam);
        }
        for pos in positions {
            let mut cur = twin.clone();
            cur[pos] ^= 0x5A;
            assert_eq!(
                PageDiff::compute(&cur, &twin),
                PageDiff::compute_reference(&cur, &twin),
                "len {len}, single change at {pos}"
            );
        }
        // A dirty span straddling the 64-byte lane seam (when present).
        if len > 68 {
            let mut cur = twin.clone();
            for b in &mut cur[60..68] {
                *b ^= 0xFF;
            }
            assert_eq!(
                PageDiff::compute(&cur, &twin),
                PageDiff::compute_reference(&cur, &twin),
                "len {len}, span straddling the lane seam"
            );
        }
    }
}

/// The chunked `DirtyBits::scan` is equivalent to the line-at-a-time
/// reference: same lines sent, same read counts, same lazy stamping — over
/// random dirtybit arrays with mixed dirty / stamped / clean lines and
/// random scan windows.
#[test]
fn chunked_scan_matches_reference() {
    let mut rng = SplitMix64::new(0xd1ff_0006);
    for case in 0..512 {
        let lines = 1 + rng.next_below(600) as usize;
        let last_seen = EPOCH + rng.next_below(40);
        let now = last_seen + 1 + rng.next_below(40);
        let mut a = DirtyBits::new(lines);
        let mut b = DirtyBits::new(lines);
        for line in 0..lines {
            match rng.next_below(8) {
                0 => {
                    a.mark(line);
                    b.mark(line);
                }
                1 | 2 => {
                    let ts = EPOCH + rng.next_below(80);
                    a.stamp(line, ts);
                    b.stamp(line, ts);
                }
                _ => {} // stays at EPOCH
            }
        }
        let start = rng.next_below(lines as u64) as usize;
        let end = start + rng.next_below((lines - start + 1) as u64) as usize;
        let got = a.scan(start..end, last_seen, now);
        let want = b.scan_reference(start..end, last_seen, now);
        assert_eq!(got.lines, want.lines, "case {case}");
        assert_eq!(got.dirty_reads, want.dirty_reads, "case {case}");
        assert_eq!(got.clean_reads, want.clean_reads, "case {case}");
        for line in 0..lines {
            assert_eq!(a.get(line), b.get(line), "case {case}: lazy stamp diverged");
        }
    }
}

/// The wire size is data plus one header per run.
#[test]
fn wire_size_accounting() {
    let mut rng = SplitMix64::new(0xd1ff_0004);
    for case in 0..256 {
        let (cur, twin) = page_pair(&mut rng);
        let diff = PageDiff::compute(&cur, &twin);
        assert_eq!(
            diff.wire_size(),
            diff.changed_bytes() + diff.run_count() * midway_mem::diff::RUN_HEADER_BYTES,
            "case {case}"
        );
    }
}
