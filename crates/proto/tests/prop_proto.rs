//! Property-based tests for bindings, dirtybit scans and the home-lock
//! state machine.

use midway_proto::untargetted::{simulate, RtVariant};
use midway_proto::{Binding, HomeLock, Mode};
use midway_stats::CostModel;
use proptest::prelude::*;

fn ranges_strategy() -> impl Strategy<Value = Vec<std::ops::Range<u64>>> {
    proptest::collection::vec((0u64..500, 0u64..60), 0..12)
        .prop_map(|v| v.into_iter().map(|(s, l)| s..s + l).collect())
}

proptest! {
    /// Normalization preserves the covered byte set and yields sorted,
    /// disjoint, non-empty ranges.
    #[test]
    fn binding_normalization_is_canonical(ranges in ranges_strategy()) {
        let binding = Binding::new(ranges.clone());
        let norm = binding.ranges();
        for w in norm.windows(2) {
            prop_assert!(w[0].end < w[1].start, "sorted, disjoint, non-adjacent");
        }
        for r in norm {
            prop_assert!(r.start < r.end, "non-empty");
        }
        // Same byte set.
        let covered = |rs: &[std::ops::Range<u64>], b: u64| rs.iter().any(|r| r.contains(&b));
        for b in (0..560).step_by(7) {
            prop_assert_eq!(covered(&ranges, b), covered(norm, b), "byte {}", b);
        }
        // data_bytes equals the measure of the set.
        let measure = (0..600).filter(|b| covered(norm, *b)).count() as u64;
        prop_assert_eq!(binding.data_bytes(), measure);
    }

    /// All three §3.5 variants find exactly the written lines.
    #[test]
    fn untargetted_variants_agree_on_dirty_lines(
        writes in proptest::collection::vec(0usize..2000, 0..200),
    ) {
        let cost = CostModel::r3000_mach();
        let expect: std::collections::BTreeSet<usize> = writes.iter().copied().collect();
        for v in [RtVariant::Plain, RtVariant::TwoLevel { group: 32 }, RtVariant::Queue] {
            let out = simulate(v, 2000, &writes, &cost);
            prop_assert_eq!(out.dirty_lines as usize, expect.len(), "{:?}", v);
        }
    }
}

/// A random schedule of lock operations per processor.
#[derive(Clone, Debug)]
enum Op {
    Acquire(usize, Mode),
    Release(usize),
}

proptest! {
    /// The home-lock state machine never grants conflicting modes and
    /// never loses a request: after all acquirers release, every request
    /// has been granted exactly once.
    #[test]
    fn home_lock_safety_and_liveness(
        script in proptest::collection::vec((0usize..6, any::<bool>()), 1..40),
    ) {
        let mut lock = HomeLock::new(0);
        // Track state per processor: None = idle, Some(mode) = granted.
        let mut granted: [Option<Mode>; 6] = [None; 6];
        let mut waiting: [Option<Mode>; 6] = [None; 6];
        let mut pending: Vec<(usize, Mode)> = Vec::new();
        let mut total_requests = 0usize;
        let mut total_grants = 0usize;

        let mut apply_transfers = |transfers: Vec<midway_proto::Transfer>,
                                   granted: &mut [Option<Mode>; 6],
                                   waiting: &mut [Option<Mode>; 6],
                                   total_grants: &mut usize| {
            for t in transfers {
                assert_eq!(waiting[t.requester], Some(t.mode), "grant without request");
                waiting[t.requester] = None;
                granted[t.requester] = Some(t.mode);
                *total_grants += 1;
            }
        };

        for (p, exclusive) in script {
            let mode = if exclusive { Mode::Exclusive } else { Mode::Shared };
            if granted[p].is_some() {
                // Release whatever this processor holds.
                let held = granted[p].take().expect("checked");
                let transfers = lock.release(p, held);
                apply_transfers(transfers, &mut granted, &mut waiting, &mut total_grants);
            } else if waiting[p].is_none() {
                waiting[p] = Some(mode);
                pending.push((p, mode));
                total_requests += 1;
                let transfers = lock.acquire(p, mode, (0, 0));
                apply_transfers(transfers, &mut granted, &mut waiting, &mut total_grants);
            }
            // Safety: at most one exclusive holder, and never readers
            // alongside a writer.
            let writers = granted.iter().filter(|g| **g == Some(Mode::Exclusive)).count();
            let readers = granted.iter().filter(|g| **g == Some(Mode::Shared)).count();
            prop_assert!(writers <= 1);
            prop_assert!(writers == 0 || readers == 0);
        }
        // Drain: release everything still granted until quiescent.
        loop {
            let Some(p) = (0..6).find(|p| granted[*p].is_some()) else {
                break;
            };
            let held = granted[p].take().expect("checked");
            let transfers = lock.release(p, held);
            apply_transfers(transfers, &mut granted, &mut waiting, &mut total_grants);
        }
        prop_assert_eq!(total_grants, total_requests, "requests lost or duplicated");
        prop_assert!(waiting.iter().all(|w| w.is_none()));
    }
}
