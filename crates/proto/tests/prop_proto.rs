//! Randomized tests for bindings, dirtybit scans and the home-lock
//! state machine, driven by the internal [`SplitMix64`] generator so
//! the workspace tests offline. Every case derives from a fixed seed
//! and is exactly reproducible.

use midway_proto::untargetted::{simulate, RtVariant};
use midway_proto::{Binding, HomeLock, Mode};
use midway_sim::SplitMix64;
use midway_stats::CostModel;

fn random_ranges(rng: &mut SplitMix64) -> Vec<std::ops::Range<u64>> {
    let n = rng.next_below(12) as usize;
    (0..n)
        .map(|_| {
            let s = rng.next_below(500);
            let l = rng.next_below(60);
            s..s + l
        })
        .collect()
}

/// Normalization preserves the covered byte set and yields sorted,
/// disjoint, non-empty ranges.
#[test]
fn binding_normalization_is_canonical() {
    let mut rng = SplitMix64::new(0xb1d_0001);
    for case in 0..256 {
        let ranges = random_ranges(&mut rng);
        let binding = Binding::new(ranges.clone());
        let norm = binding.ranges();
        for w in norm.windows(2) {
            assert!(w[0].end < w[1].start, "sorted, disjoint, non-adjacent");
        }
        for r in norm {
            assert!(r.start < r.end, "non-empty (case {case})");
        }
        // Same byte set.
        let covered = |rs: &[std::ops::Range<u64>], b: u64| rs.iter().any(|r| r.contains(&b));
        for b in (0..560).step_by(7) {
            assert_eq!(
                covered(&ranges, b),
                covered(norm, b),
                "byte {b} case {case}"
            );
        }
        // data_bytes equals the measure of the set.
        let measure = (0..600).filter(|b| covered(norm, *b)).count() as u64;
        assert_eq!(binding.data_bytes(), measure, "case {case}");
    }
}

/// All three §3.5 variants find exactly the written lines.
#[test]
fn untargetted_variants_agree_on_dirty_lines() {
    let mut rng = SplitMix64::new(0xb1d_0002);
    let cost = CostModel::r3000_mach();
    for case in 0..64 {
        let n = rng.next_below(200) as usize;
        let writes: Vec<usize> = (0..n).map(|_| rng.next_below(2000) as usize).collect();
        let expect: std::collections::BTreeSet<usize> = writes.iter().copied().collect();
        for v in [
            RtVariant::Plain,
            RtVariant::TwoLevel { group: 32 },
            RtVariant::Queue,
        ] {
            let out = simulate(v, 2000, &writes, &cost);
            assert_eq!(out.dirty_lines as usize, expect.len(), "{v:?} case {case}");
        }
    }
}

/// The home-lock state machine never grants conflicting modes and
/// never loses a request: after all acquirers release, every request
/// has been granted exactly once.
#[test]
fn home_lock_safety_and_liveness() {
    let mut rng = SplitMix64::new(0xb1d_0003);
    for case in 0..256 {
        let steps = 1 + rng.next_below(40) as usize;
        let script: Vec<(usize, bool)> = (0..steps)
            .map(|_| (rng.next_below(6) as usize, rng.next_below(2) == 1))
            .collect();

        let mut lock = HomeLock::new(0);
        // Track state per processor: None = idle, Some(mode) = granted.
        let mut granted: [Option<Mode>; 6] = [None; 6];
        let mut waiting: [Option<Mode>; 6] = [None; 6];
        let mut total_requests = 0usize;
        let mut total_grants = 0usize;

        let apply_transfers = |transfers: Vec<midway_proto::Transfer>,
                               granted: &mut [Option<Mode>; 6],
                               waiting: &mut [Option<Mode>; 6],
                               total_grants: &mut usize| {
            for t in transfers {
                assert_eq!(waiting[t.requester], Some(t.mode), "grant without request");
                waiting[t.requester] = None;
                granted[t.requester] = Some(t.mode);
                *total_grants += 1;
            }
        };

        for (p, exclusive) in script {
            let mode = if exclusive {
                Mode::Exclusive
            } else {
                Mode::Shared
            };
            if granted[p].is_some() {
                // Release whatever this processor holds.
                let held = granted[p].take().expect("checked");
                let transfers = lock.release(p, held);
                apply_transfers(transfers, &mut granted, &mut waiting, &mut total_grants);
            } else if waiting[p].is_none() {
                waiting[p] = Some(mode);
                total_requests += 1;
                let transfers = lock.acquire(p, mode, (0, 0));
                apply_transfers(transfers, &mut granted, &mut waiting, &mut total_grants);
            }
            // Safety: at most one exclusive holder, and never readers
            // alongside a writer.
            let writers = granted
                .iter()
                .filter(|g| **g == Some(Mode::Exclusive))
                .count();
            let readers = granted.iter().filter(|g| **g == Some(Mode::Shared)).count();
            assert!(writers <= 1, "case {case}");
            assert!(writers == 0 || readers == 0, "case {case}");
        }
        // Drain: release everything still granted until quiescent.
        while let Some(p) = (0..6).find(|p| granted[*p].is_some()) {
            let held = granted[p].take().expect("checked");
            let transfers = lock.release(p, held);
            apply_transfers(transfers, &mut granted, &mut waiting, &mut total_grants);
        }
        assert_eq!(
            total_grants, total_requests,
            "requests lost or duplicated (case {case})"
        );
        assert!(waiting.iter().all(|w| w.is_none()), "case {case}");
    }
}
