//! Entry-consistency protocol pieces for the Midway DSM reproduction.
//!
//! Midway (paper §3) provides *entry consistency*: processes synchronize
//! through locks and barriers, the programmer binds data to each
//! synchronization object, and at a synchronization point exactly the bound
//! data is made consistent. This crate holds the protocol's building
//! blocks, kept free of any simulator dependency so each piece is
//! unit-testable in isolation:
//!
//! * [`LamportClock`] — the logical time that orders cache-line updates in
//!   RT-DSM (§3.2).
//! * [`Binding`] — the lock/barrier ↔ data association, including the
//!   dynamic rebinding `quicksort` exercises.
//! * [`UpdateSet`]/[`Update`] — the consistency updates shipped between
//!   processors, with wire-size accounting.
//! * [`rt`] — RT-DSM write collection: timestamp dirtybit scans and update
//!   application (§3.2).
//! * [`vm`] — VM-DSM write collection: twins, diffs, and the per-lock
//!   incarnation history (§3.4).
//! * [`blast`] — the §3.5 strawman that ships all bound data with no write
//!   detection at all.
//! * [`HomeLock`] — the home-node lock state machine (exclusive and
//!   non-exclusive modes).
//! * [`BarrierSite`] — the manager-side barrier state machine.
//! * [`TreeSite`] — the combining-tree barrier, the scale-out alternative
//!   to the flat site (bounded per-node fan-in at hundreds of
//!   processors), with [`HomeMap`] assigning lock homes and barrier
//!   managers (modulo or hash-sharded).
//! * [`channel`] — the reliable-delivery channel (sequence numbers,
//!   cumulative acks, retransmission with backoff) that keeps all of the
//!   above correct on a lossy network.

mod binding;
pub mod blast;
pub mod channel;
mod clock;
mod home;
pub mod rt;
mod sync_id;
mod tree;
pub mod untargetted;
mod update;
pub mod vm;

pub use binding::Binding;
pub use channel::{
    Accept, LinkStats, RecvChannel, ReliableParams, SendChannel, RELIABLE_HEADER_BYTES,
};
pub use clock::LamportClock;
pub use home::{BarrierError, BarrierSite, HomeLock, SeenToken, Transfer};
pub use sync_id::{BarrierId, HomeMap, LockId, Mode};
pub use tree::{TreeSite, TreeStep, TreeTopology};
pub use update::{Update, UpdateItem, UpdateSet, ITEM_HEADER_BYTES, MSG_HEADER_BYTES};
