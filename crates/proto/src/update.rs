//! Consistency updates and their wire-size accounting.

/// Fixed per-message protocol header, in bytes.
pub const MSG_HEADER_BYTES: u64 = 32;

/// Per-item wire overhead: address (8) + length (4) + timestamp (8).
pub const ITEM_HEADER_BYTES: u64 = 20;

/// One updated piece of shared memory: a cache line (RT) or a diff run
/// (VM), addressed globally.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateItem {
    /// Global address of the first byte.
    pub addr: u64,
    /// The new bytes.
    pub data: Vec<u8>,
    /// RT-DSM: the Lamport timestamp of the modification. VM-DSM: unused
    /// (zero) — ordering comes from the enclosing incarnation.
    pub ts: u64,
}

/// A set of updates shipped in one direction at one synchronization point.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UpdateSet {
    /// The items, in increasing address order.
    pub items: Vec<UpdateItem>,
}

impl UpdateSet {
    /// An empty set.
    pub fn new() -> UpdateSet {
        UpdateSet::default()
    }

    /// True when nothing is carried.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Application data bytes (what the paper's "data transferred" counts).
    pub fn data_bytes(&self) -> u64 {
        self.items.iter().map(|i| i.data.len() as u64).sum()
    }

    /// Total bytes on the wire, including per-item headers.
    pub fn wire_size(&self) -> u64 {
        self.data_bytes() + ITEM_HEADER_BYTES * self.items.len() as u64
    }

    /// True when items are in strictly increasing address order (the
    /// invariant every detector-produced set satisfies).
    fn addr_sorted(&self) -> bool {
        self.items.windows(2).all(|w| w[0].addr < w[1].addr)
    }

    /// Merges `other` into `self`, keeping the newer item when both carry
    /// the same address (ties broken toward `other`).
    ///
    /// Used by the barrier manager to combine per-processor contributions.
    /// Sorted inputs take a linear two-pointer merge; anything else falls
    /// back to the quadratic find-and-replace with identical semantics.
    pub fn merge_newer(&mut self, other: UpdateSet) {
        if self.addr_sorted() && other.addr_sorted() {
            let mut merged = Vec::with_capacity(self.items.len() + other.items.len());
            let mut a = std::mem::take(&mut self.items).into_iter().peekable();
            let mut b = other.items.into_iter().peekable();
            loop {
                match (a.peek(), b.peek()) {
                    (Some(x), Some(y)) => match x.addr.cmp(&y.addr) {
                        std::cmp::Ordering::Less => merged.push(a.next().expect("peeked")),
                        std::cmp::Ordering::Greater => merged.push(b.next().expect("peeked")),
                        std::cmp::Ordering::Equal => {
                            let mine = a.next().expect("peeked");
                            let theirs = b.next().expect("peeked");
                            merged.push(if theirs.ts >= mine.ts { theirs } else { mine });
                        }
                    },
                    (Some(_), None) => merged.push(a.next().expect("peeked")),
                    (None, Some(_)) => merged.push(b.next().expect("peeked")),
                    (None, None) => break,
                }
            }
            self.items = merged;
            return;
        }
        for item in other.items {
            match self.items.iter_mut().find(|i| i.addr == item.addr) {
                Some(existing) => {
                    if item.ts >= existing.ts {
                        *existing = item;
                    }
                }
                None => self.items.push(item),
            }
        }
        self.items.sort_by_key(|i| i.addr);
    }

    /// The subset of items whose address is not in `exclude` (used when a
    /// barrier release avoids echoing a processor's own contribution).
    /// Self order is preserved; a sorted `exclude` takes a two-pointer
    /// walk instead of a hash lookup per item.
    pub fn excluding_addrs_of(&self, exclude: &UpdateSet) -> UpdateSet {
        if exclude.addr_sorted() && self.addr_sorted() {
            let ex = &exclude.items;
            let mut k = 0usize;
            let items = self
                .items
                .iter()
                .filter(|i| {
                    while k < ex.len() && ex[k].addr < i.addr {
                        k += 1;
                    }
                    !(k < ex.len() && ex[k].addr == i.addr)
                })
                .cloned()
                .collect();
            return UpdateSet { items };
        }
        let addrs: std::collections::HashSet<u64> = exclude.items.iter().map(|i| i.addr).collect();
        UpdateSet {
            items: self
                .items
                .iter()
                .filter(|i| !addrs.contains(&i.addr))
                .cloned()
                .collect(),
        }
    }
}

/// A VM-DSM update: the modifications made during one incarnation of a
/// lock (paper §3.4).
#[derive(Clone, Debug, PartialEq)]
pub struct Update {
    /// The incarnation this update encapsulates.
    pub incarnation: u64,
    /// The modified data.
    pub set: UpdateSet,
    /// True when `set` is a full snapshot of the bound data: it subsumes
    /// every earlier incarnation, so it can serve arbitrarily old
    /// requesters.
    pub full: bool,
}

impl Update {
    /// Wire size of this update.
    pub fn wire_size(&self) -> u64 {
        8 + self.set.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(addr: u64, bytes: usize, ts: u64) -> UpdateItem {
        UpdateItem {
            addr,
            data: vec![ts as u8; bytes],
            ts,
        }
    }

    #[test]
    fn sizes_count_data_and_headers() {
        let set = UpdateSet {
            items: vec![item(0, 8, 1), item(16, 4, 2)],
        };
        assert_eq!(set.data_bytes(), 12);
        assert_eq!(set.wire_size(), 12 + 2 * ITEM_HEADER_BYTES);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn merge_keeps_newer_timestamps() {
        let mut a = UpdateSet {
            items: vec![item(0, 8, 5), item(8, 8, 9)],
        };
        let b = UpdateSet {
            items: vec![item(0, 8, 7), item(8, 8, 3), item(16, 8, 1)],
        };
        a.merge_newer(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.items[0].ts, 7, "newer replaces older");
        assert_eq!(a.items[1].ts, 9, "older does not replace newer");
        assert_eq!(a.items[2].addr, 16);
    }

    #[test]
    fn excluding_addrs_filters_out_own_contribution() {
        let merged = UpdateSet {
            items: vec![item(0, 8, 1), item(8, 8, 2), item(16, 8, 3)],
        };
        let mine = UpdateSet {
            items: vec![item(8, 8, 2)],
        };
        let rest = merged.excluding_addrs_of(&mine);
        assert_eq!(
            rest.items.iter().map(|i| i.addr).collect::<Vec<_>>(),
            vec![0, 16]
        );
    }

    #[test]
    fn empty_set_is_cheap() {
        let set = UpdateSet::new();
        assert!(set.is_empty());
        assert_eq!(set.wire_size(), 0);
    }

    /// The quadratic find-and-replace the two-pointer merge must match.
    fn reference_merge(a: &UpdateSet, b: &UpdateSet) -> UpdateSet {
        let mut out = a.clone();
        for item in b.items.clone() {
            match out.items.iter_mut().find(|i| i.addr == item.addr) {
                Some(existing) => {
                    if item.ts >= existing.ts {
                        *existing = item;
                    }
                }
                None => out.items.push(item),
            }
        }
        out.items.sort_by_key(|i| i.addr);
        out
    }

    fn random_sorted_set(seed: u64, max_items: u64) -> UpdateSet {
        // Simple splitmix-style generator; addresses strictly increasing.
        let mut s = seed;
        let mut next = || {
            s = s.wrapping_add(0x9e3779b97f4a7c15);
            let mut z = s;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
            z ^ (z >> 31)
        };
        let n = next() % max_items;
        let mut addr = 0u64;
        let items = (0..n)
            .map(|_| {
                addr += 8 * (1 + next() % 4);
                item(addr, 8, next() % 4)
            })
            .collect();
        UpdateSet { items }
    }

    #[test]
    fn two_pointer_merge_matches_reference() {
        for seed in 0..200u64 {
            let a = random_sorted_set(seed * 2 + 1, 24);
            let b = random_sorted_set(seed * 2 + 2, 24);
            let mut fast = a.clone();
            fast.merge_newer(b.clone());
            assert_eq!(fast, reference_merge(&a, &b), "seed {seed}");
        }
    }

    #[test]
    fn two_pointer_exclusion_matches_reference() {
        for seed in 0..200u64 {
            let a = random_sorted_set(seed * 3 + 1, 24);
            let b = random_sorted_set(seed * 3 + 2, 24);
            let addrs: std::collections::HashSet<u64> = b.items.iter().map(|i| i.addr).collect();
            let want = UpdateSet {
                items: a
                    .items
                    .iter()
                    .filter(|i| !addrs.contains(&i.addr))
                    .cloned()
                    .collect(),
            };
            assert_eq!(a.excluding_addrs_of(&b), want, "seed {seed}");
        }
    }

    #[test]
    fn unsorted_inputs_fall_back_to_reference_semantics() {
        let a = UpdateSet {
            items: vec![item(16, 8, 1), item(0, 8, 2)], // unsorted
        };
        let b = UpdateSet {
            items: vec![item(0, 8, 2), item(8, 8, 1)],
        };
        let mut m = a.clone();
        m.merge_newer(b.clone());
        assert_eq!(m, reference_merge(&a, &b));
    }
}
