//! Consistency updates and their wire-size accounting.

/// Fixed per-message protocol header, in bytes.
pub const MSG_HEADER_BYTES: u64 = 32;

/// Per-item wire overhead: address (8) + length (4) + timestamp (8).
pub const ITEM_HEADER_BYTES: u64 = 20;

/// One updated piece of shared memory: a cache line (RT) or a diff run
/// (VM), addressed globally.
#[derive(Clone, Debug, PartialEq)]
pub struct UpdateItem {
    /// Global address of the first byte.
    pub addr: u64,
    /// The new bytes.
    pub data: Vec<u8>,
    /// RT-DSM: the Lamport timestamp of the modification. VM-DSM: unused
    /// (zero) — ordering comes from the enclosing incarnation.
    pub ts: u64,
}

/// A set of updates shipped in one direction at one synchronization point.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct UpdateSet {
    /// The items, in increasing address order.
    pub items: Vec<UpdateItem>,
}

impl UpdateSet {
    /// An empty set.
    pub fn new() -> UpdateSet {
        UpdateSet::default()
    }

    /// True when nothing is carried.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Application data bytes (what the paper's "data transferred" counts).
    pub fn data_bytes(&self) -> u64 {
        self.items.iter().map(|i| i.data.len() as u64).sum()
    }

    /// Total bytes on the wire, including per-item headers.
    pub fn wire_size(&self) -> u64 {
        self.data_bytes() + ITEM_HEADER_BYTES * self.items.len() as u64
    }

    /// Merges `other` into `self`, keeping the newer item when both carry
    /// the same address (ties broken toward `other`).
    ///
    /// Used by the barrier manager to combine per-processor contributions.
    pub fn merge_newer(&mut self, other: UpdateSet) {
        for item in other.items {
            match self.items.iter_mut().find(|i| i.addr == item.addr) {
                Some(existing) => {
                    if item.ts >= existing.ts {
                        *existing = item;
                    }
                }
                None => self.items.push(item),
            }
        }
        self.items.sort_by_key(|i| i.addr);
    }

    /// The subset of items whose address is not in `exclude` (used when a
    /// barrier release avoids echoing a processor's own contribution).
    pub fn excluding_addrs_of(&self, exclude: &UpdateSet) -> UpdateSet {
        let addrs: std::collections::HashSet<u64> = exclude.items.iter().map(|i| i.addr).collect();
        UpdateSet {
            items: self
                .items
                .iter()
                .filter(|i| !addrs.contains(&i.addr))
                .cloned()
                .collect(),
        }
    }
}

/// A VM-DSM update: the modifications made during one incarnation of a
/// lock (paper §3.4).
#[derive(Clone, Debug, PartialEq)]
pub struct Update {
    /// The incarnation this update encapsulates.
    pub incarnation: u64,
    /// The modified data.
    pub set: UpdateSet,
    /// True when `set` is a full snapshot of the bound data: it subsumes
    /// every earlier incarnation, so it can serve arbitrarily old
    /// requesters.
    pub full: bool,
}

impl Update {
    /// Wire size of this update.
    pub fn wire_size(&self) -> u64 {
        8 + self.set.wire_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn item(addr: u64, bytes: usize, ts: u64) -> UpdateItem {
        UpdateItem {
            addr,
            data: vec![ts as u8; bytes],
            ts,
        }
    }

    #[test]
    fn sizes_count_data_and_headers() {
        let set = UpdateSet {
            items: vec![item(0, 8, 1), item(16, 4, 2)],
        };
        assert_eq!(set.data_bytes(), 12);
        assert_eq!(set.wire_size(), 12 + 2 * ITEM_HEADER_BYTES);
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn merge_keeps_newer_timestamps() {
        let mut a = UpdateSet {
            items: vec![item(0, 8, 5), item(8, 8, 9)],
        };
        let b = UpdateSet {
            items: vec![item(0, 8, 7), item(8, 8, 3), item(16, 8, 1)],
        };
        a.merge_newer(b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.items[0].ts, 7, "newer replaces older");
        assert_eq!(a.items[1].ts, 9, "older does not replace newer");
        assert_eq!(a.items[2].addr, 16);
    }

    #[test]
    fn excluding_addrs_filters_out_own_contribution() {
        let merged = UpdateSet {
            items: vec![item(0, 8, 1), item(8, 8, 2), item(16, 8, 3)],
        };
        let mine = UpdateSet {
            items: vec![item(8, 8, 2)],
        };
        let rest = merged.excluding_addrs_of(&mine);
        assert_eq!(
            rest.items.iter().map(|i| i.addr).collect::<Vec<_>>(),
            vec![0, 16]
        );
    }

    #[test]
    fn empty_set_is_cheap() {
        let set = UpdateSet::new();
        assert!(set.is_empty());
        assert_eq!(set.wire_size(), 0);
    }
}
