//! Synchronization object identities and acquisition modes.

/// Identifies a lock. The lock's *home* processor is `id % procs`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LockId(pub u32);

/// Identifies a barrier. The barrier's *manager* is `id % procs`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BarrierId(pub u32);

/// Lock acquisition mode (paper §3: "locks may be acquired in exclusive
/// (for writing) or non-exclusive mode (for reading)").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Exclusive: one holder, writes allowed.
    Exclusive,
    /// Non-exclusive: concurrent readers.
    Shared,
}

impl LockId {
    /// The lock's home processor in a `procs`-processor cluster.
    pub fn home(self, procs: usize) -> usize {
        self.0 as usize % procs
    }
}

impl BarrierId {
    /// The barrier's manager processor in a `procs`-processor cluster.
    pub fn manager(self, procs: usize) -> usize {
        self.0 as usize % procs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homes_are_spread_across_processors() {
        assert_eq!(LockId(0).home(8), 0);
        assert_eq!(LockId(9).home(8), 1);
        assert_eq!(BarrierId(3).manager(2), 1);
    }
}
