//! Synchronization object identities, acquisition modes, and the
//! pluggable home assignment ([`HomeMap`]).

/// Identifies a lock. The lock's *home* processor is assigned by the
/// cluster's [`HomeMap`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct LockId(pub u32);

/// Identifies a barrier. The barrier's *manager* is assigned by the
/// cluster's [`HomeMap`].
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct BarrierId(pub u32);

/// Lock acquisition mode (paper §3: "locks may be acquired in exclusive
/// (for writing) or non-exclusive mode (for reading)").
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Mode {
    /// Exclusive: one holder, writes allowed.
    Exclusive,
    /// Non-exclusive: concurrent readers.
    Shared,
}

/// Assigns every synchronization object a *home* processor — the
/// serialization point for its requests. Pluggable so deployments can
/// trade locality (modulo keeps consecutive ids on consecutive
/// processors) against hot-spot avoidance (sharding scatters dense id
/// ranges, e.g. a task queue allocating consecutive slot locks, across
/// the whole cluster).
///
/// Lock and barrier id spaces are independent, so the map mixes in a
/// kind discriminant: a lock and a barrier with equal ids need not share
/// a home.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum HomeMap {
    /// `id % procs` — the paper's layout and the historical default.
    #[default]
    Modulo,
    /// Hash-sharded: a seeded splitmix of the id picks the home, so any
    /// contiguous id range spreads evenly over the cluster.
    Sharded {
        /// Placement seed; runs with equal seeds place identically.
        seed: u64,
    },
}

impl HomeMap {
    /// The home processor of `lock` in a `procs`-processor cluster.
    pub fn lock_home(self, lock: LockId, procs: usize) -> usize {
        self.place(0, lock.0, procs)
    }

    /// The manager processor of `barrier` in a `procs`-processor cluster.
    pub fn barrier_manager(self, barrier: BarrierId, procs: usize) -> usize {
        self.place(1, barrier.0, procs)
    }

    fn place(self, kind: u64, id: u32, procs: usize) -> usize {
        debug_assert!(procs > 0, "empty cluster has no homes");
        match self {
            HomeMap::Modulo => id as usize % procs,
            HomeMap::Sharded { seed } => {
                (mix(seed ^ (kind << 32) ^ u64::from(id)) % procs as u64) as usize
            }
        }
    }
}

/// SplitMix64 finalizer: a full-avalanche 64-bit mix.
fn mix(v: u64) -> u64 {
    let mut z = v.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl LockId {
    /// The lock's home under the historical modulo map. Prefer
    /// [`HomeMap::lock_home`]; kept for callers with no config in scope.
    pub fn home(self, procs: usize) -> usize {
        HomeMap::Modulo.lock_home(self, procs)
    }
}

impl BarrierId {
    /// The barrier's manager under the historical modulo map. Prefer
    /// [`HomeMap::barrier_manager`]; kept for callers with no config in
    /// scope.
    pub fn manager(self, procs: usize) -> usize {
        HomeMap::Modulo.barrier_manager(self, procs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn homes_are_spread_across_processors() {
        assert_eq!(LockId(0).home(8), 0);
        assert_eq!(LockId(9).home(8), 1);
        assert_eq!(BarrierId(3).manager(2), 1);
    }

    #[test]
    fn modulo_map_matches_historical_layout() {
        for procs in [1usize, 3, 8, 64] {
            for id in 0..200u32 {
                assert_eq!(
                    HomeMap::Modulo.lock_home(LockId(id), procs),
                    id as usize % procs
                );
                assert_eq!(
                    HomeMap::Modulo.barrier_manager(BarrierId(id), procs),
                    id as usize % procs
                );
            }
        }
    }

    #[test]
    fn sharded_map_balances_dense_id_ranges() {
        // A contiguous block of lock ids (a task queue's slot locks) must
        // not pile onto a few processors.
        let procs = 64;
        let map = HomeMap::Sharded { seed: 11 };
        let mut per_home = vec![0usize; procs];
        for id in 0..64_000u32 {
            per_home[map.lock_home(LockId(id), procs)] += 1;
        }
        let (min, max) = (
            *per_home.iter().min().expect("nonempty"),
            *per_home.iter().max().expect("nonempty"),
        );
        assert!(
            max < min * 2,
            "sharded homes unbalanced: min {min}, max {max}"
        );
    }

    #[test]
    fn sharded_map_is_deterministic_and_kind_sensitive() {
        let map = HomeMap::Sharded { seed: 5 };
        assert_eq!(map.lock_home(LockId(7), 16), map.lock_home(LockId(7), 16));
        // Locks and barriers hash independently: over many ids the two
        // kinds must disagree somewhere.
        let disagree = (0..64u32)
            .any(|id| map.lock_home(LockId(id), 16) != map.barrier_manager(BarrierId(id), 16));
        assert!(disagree, "kind discriminant has no effect");
    }
}
