//! §3.5 RT-DSM extensions for *untargetted* consistency models.
//!
//! Entry consistency is *targetted*: collection scans only the data bound
//! to the synchronization object. An untargetted model (release
//! consistency) must make the whole shared space consistent, so collection
//! would scan every cached line. The paper sketches two ways to trade a
//! slightly more expensive write path for cheaper collection:
//!
//! * an **update queue** — "roughly triples the cost of write trapping,
//!   \[but\] keeps the cost of write detection proportional to the amount of
//!   dirty data, rather than the amount of shared data", with "a simple
//!   heuristic [for sequential updates] to substantially reduce the queue
//!   size";
//! * **two-level dirtybits** — a first-level bit covers many second-level
//!   bits; "one additional store instruction in the write detection path,
//!   increasing its length by about 10%", and clean first-level bits let
//!   collection skip whole groups.
//!
//! These are modelled here as standalone cost simulations over a write
//! trace, driving the `ablation_rt_variants` harness.

use midway_stats::CostModel;

/// The write-detection strategy being costed.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RtVariant {
    /// Flat dirtybit array: cheap writes, full-space scans.
    Plain,
    /// Two-level dirtybits with `group` second-level bits per summary bit.
    TwoLevel {
        /// Lines covered by one first-level bit.
        group: usize,
    },
    /// An update queue with the sequential-run heuristic.
    Queue,
}

impl RtVariant {
    /// A short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            RtVariant::Plain => "flat dirtybits",
            RtVariant::TwoLevel { .. } => "two-level dirtybits",
            RtVariant::Queue => "update queue",
        }
    }
}

/// The costs of trapping a write trace and then collecting once.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct VariantCost {
    /// Cycles spent in the write path.
    pub trap_cycles: u64,
    /// Cycles spent scanning at the synchronization point.
    pub collect_cycles: u64,
    /// Dirty lines found (identical across variants, by construction).
    pub dirty_lines: u64,
    /// For the queue variant: entries actually enqueued.
    pub queue_entries: u64,
}

impl VariantCost {
    /// Total detection cycles.
    pub fn total(&self) -> u64 {
        self.trap_cycles + self.collect_cycles
    }
}

/// Costs one trapping-plus-collection round of `variant` over a shared
/// space of `lines` cache lines, given the trace of written line indices.
///
/// # Panics
///
/// Panics if a write index is out of range or a two-level group size is
/// zero.
pub fn simulate(
    variant: RtVariant,
    lines: usize,
    writes: &[usize],
    cost: &CostModel,
) -> VariantCost {
    let mut out = VariantCost::default();
    let mut dirty = vec![false; lines];
    match variant {
        RtVariant::Plain => {
            for &w in writes {
                dirty[w] = true;
                out.trap_cycles += cost.dirtybit_set_word;
            }
            for &d in &dirty {
                if d {
                    out.collect_cycles += cost.dirtybit_read_dirty;
                    out.dirty_lines += 1;
                } else {
                    out.collect_cycles += cost.dirtybit_read_clean;
                }
            }
        }
        RtVariant::TwoLevel { group } => {
            assert!(group > 0, "group size must be positive");
            let groups = lines.div_ceil(group);
            let mut l1 = vec![false; groups];
            for &w in writes {
                dirty[w] = true;
                l1[w / group] = true;
                out.trap_cycles += cost.dirtybit_set_two_level;
            }
            for (g, &summary) in l1.iter().enumerate() {
                out.collect_cycles += cost.two_level_l1_read;
                if !summary {
                    continue; // the whole group is skipped
                }
                let lo = g * group;
                let hi = (lo + group).min(lines);
                for &d in &dirty[lo..hi] {
                    if d {
                        out.collect_cycles += cost.dirtybit_read_dirty;
                        out.dirty_lines += 1;
                    } else {
                        out.collect_cycles += cost.dirtybit_read_clean;
                    }
                }
            }
        }
        RtVariant::Queue => {
            // Entries are runs: "many updates are sequential, allowing a
            // simple heuristic to substantially reduce the queue size".
            let mut queue: Vec<(usize, usize)> = Vec::new();
            for &w in writes {
                out.trap_cycles += cost.dirtybit_set_queue;
                match queue.last_mut() {
                    Some((start, len)) if w == *start + *len => *len += 1,
                    Some((start, len)) if w >= *start && w < *start + *len => {}
                    _ => queue.push((w, 1)),
                }
            }
            out.queue_entries = queue.len() as u64;
            // Collection drains the queue: proportional to dirty data.
            for &(start, len) in &queue {
                for d in dirty.iter_mut().skip(start).take(len) {
                    *d = true;
                    out.collect_cycles += cost.dirtybit_read_dirty;
                }
            }
            out.dirty_lines = dirty.iter().filter(|d| **d).count() as u64;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost() -> CostModel {
        CostModel::r3000_mach()
    }

    #[test]
    fn queue_trap_is_roughly_triple_plain() {
        let writes: Vec<usize> = (0..100).collect();
        let plain = simulate(RtVariant::Plain, 1000, &writes, &cost());
        let queue = simulate(RtVariant::Queue, 1000, &writes, &cost());
        assert_eq!(plain.trap_cycles, 900);
        assert_eq!(queue.trap_cycles, 2700, "paper: roughly triples");
    }

    #[test]
    fn two_level_trap_is_ten_percent_dearer() {
        let writes: Vec<usize> = (0..100).collect();
        let plain = simulate(RtVariant::Plain, 1000, &writes, &cost());
        let two = simulate(RtVariant::TwoLevel { group: 64 }, 1000, &writes, &cost());
        assert!(two.trap_cycles > plain.trap_cycles);
        assert!(two.trap_cycles <= plain.trap_cycles * 112 / 100);
    }

    #[test]
    fn sparse_writes_favour_queue_and_two_level_collection() {
        // One dirty line in a large space: plain pays a full scan.
        let lines = 100_000;
        let writes = [42usize];
        let c = cost();
        let plain = simulate(RtVariant::Plain, lines, &writes, &c);
        let two = simulate(RtVariant::TwoLevel { group: 64 }, lines, &writes, &c);
        let queue = simulate(RtVariant::Queue, lines, &writes, &c);
        assert!(plain.collect_cycles > 100_000);
        assert!(two.collect_cycles < plain.collect_cycles / 10);
        assert!(queue.collect_cycles < two.collect_cycles);
        assert_eq!(plain.dirty_lines, 1);
        assert_eq!(two.dirty_lines, 1);
        assert_eq!(queue.dirty_lines, 1);
    }

    #[test]
    fn sequential_heuristic_compresses_runs() {
        let writes: Vec<usize> = (100..200).collect(); // one sequential run
        let queue = simulate(RtVariant::Queue, 1000, &writes, &cost());
        assert_eq!(queue.queue_entries, 1, "one run entry for the sequence");
        assert_eq!(queue.dirty_lines, 100, "no written line is lost");
    }

    #[test]
    fn dense_writes_favour_plain_dirtybits() {
        // Every line written: scanning is optimal, queues pay triple traps.
        let lines = 1_000;
        let writes: Vec<usize> = (0..lines).rev().collect(); // non-sequential
        let c = cost();
        let plain = simulate(RtVariant::Plain, lines, &writes, &c);
        let queue = simulate(RtVariant::Queue, lines, &writes, &c);
        assert!(plain.total() < queue.total());
    }

    #[test]
    fn variants_find_the_same_dirty_lines_for_scattered_writes() {
        let writes = [5usize, 99, 500, 777];
        let c = cost();
        for v in [
            RtVariant::Plain,
            RtVariant::TwoLevel { group: 32 },
            RtVariant::Queue,
        ] {
            assert_eq!(simulate(v, 1000, &writes, &c).dirty_lines, 4, "{v:?}");
        }
    }
}
