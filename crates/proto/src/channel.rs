//! Reliable delivery over a lossy network.
//!
//! The simulator's [`FaultPlan`](../midway_sim) can drop, duplicate,
//! reorder and delay messages; this module provides the sliding-window
//! machinery that restores exactly-once, in-order delivery on top of it —
//! the same split as a transport protocol's sequencing layer, kept free of
//! any simulator dependency so it is unit-testable in isolation.
//!
//! One directed `(sender, receiver)` pair gets one [`SendChannel`] on the
//! sender and one [`RecvChannel`] on the receiver:
//!
//! * the sender stamps every frame with a per-pair sequence number
//!   (starting at 1) and keeps it buffered until acknowledged;
//! * the receiver delivers frames strictly in sequence order, buffering
//!   early arrivals and discarding duplicates, and advertises a
//!   *cumulative* ack (the highest sequence received with no gaps);
//! * acks ride on every reverse-direction data frame and on explicit ack
//!   frames; a cumulative ack covers every frame up to it, so lost acks
//!   are repaired by any later ack;
//! * unacked frames are retransmitted go-back-N style from the oldest,
//!   on a timer with exponential backoff (see [`ReliableParams`]).
//!
//! The state machines here are pure: the host (the DSM node engine) owns
//! timers, wire costs, and the decision of when to send what.

use std::collections::BTreeMap;

/// Wire overhead of reliable framing: an 8-byte sequence number plus an
/// 8-byte cumulative ack on every data frame.
pub const RELIABLE_HEADER_BYTES: u64 = 16;

/// Tuning knobs of the reliable channel.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ReliableParams {
    /// Base retransmit timeout, in cycles. Should comfortably exceed one
    /// network round trip (ATM model: ~2 × (7 500 + 500 + wire) cycles)
    /// *plus* the receiver's typical compute stretch: the simulated nodes
    /// acknowledge from the protocol loop, not from an interrupt handler,
    /// so a frame landing mid-computation is not acked until the receiver
    /// next drains its queue. A timeout tighter than that stretch
    /// retransmits into the void and taxes both ends' critical paths with
    /// duplicate processing.
    pub rto_cycles: u64,
    /// Maximum exponent of the backoff: the timeout doubles per
    /// consecutive retransmission of the same frame, up to
    /// `rto_cycles << backoff_cap`.
    pub backoff_cap: u32,
    /// CPU cycles charged when a retransmit timer fires (the cost of
    /// scanning the inflight queue).
    pub timer_cost_cycles: u64,
}

impl ReliableParams {
    /// Defaults tuned to the paper's ATM cluster model: the base timeout
    /// is ~15 round trips (10 ms at 25 MHz) so neither a healthy network
    /// nor an application compute stretch normally times out.
    pub fn atm_cluster() -> ReliableParams {
        ReliableParams {
            rto_cycles: 250_000,
            backoff_cap: 6,
            timer_cost_cycles: 150,
        }
    }

    /// The retransmit timeout after `retries` consecutive retransmissions
    /// of the same oldest frame.
    pub fn rto_after(&self, retries: u32) -> u64 {
        self.rto_cycles << retries.min(self.backoff_cap)
    }
}

impl Default for ReliableParams {
    fn default() -> ReliableParams {
        ReliableParams::atm_cluster()
    }
}

/// Per-processor tallies of reliable-channel activity, aggregated over
/// all peers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LinkStats {
    /// Data frames sent (first transmissions).
    pub data_frames_sent: u64,
    /// Explicit ack-only frames sent.
    pub acks_sent: u64,
    /// Data frames retransmitted after a timeout.
    pub retransmits: u64,
    /// Retransmit timers that fired (whether or not anything was resent).
    pub timer_fires: u64,
    /// Incoming duplicate frames discarded by sequence check.
    pub dup_frames_dropped: u64,
    /// Incoming frames that arrived ahead of sequence and were buffered.
    pub out_of_order_buffered: u64,
    /// Incoming frames fenced because they carried an incarnation epoch
    /// older than the sender's current one (pre-crash stragglers).
    pub stale_epoch_fenced: u64,
    /// Peer epoch bumps observed: how many times a peer's frames revealed
    /// it had crashed and recovered since we last heard from it.
    pub peer_recoveries_observed: u64,
}

impl LinkStats {
    /// Element-wise sum, for cluster-wide aggregation.
    pub fn add(&mut self, other: &LinkStats) {
        self.data_frames_sent += other.data_frames_sent;
        self.acks_sent += other.acks_sent;
        self.retransmits += other.retransmits;
        self.timer_fires += other.timer_fires;
        self.dup_frames_dropped += other.dup_frames_dropped;
        self.out_of_order_buffered += other.out_of_order_buffered;
        self.stale_epoch_fenced += other.stale_epoch_fenced;
        self.peer_recoveries_observed += other.peer_recoveries_observed;
    }

    /// Total extra frames the channel put on the wire beyond first
    /// transmissions.
    pub fn overhead_frames(&self) -> u64 {
        self.acks_sent + self.retransmits
    }
}

/// Sender side of one directed reliable channel.
///
/// Frames are staged here before transmission and held until a cumulative
/// ack covers them. The host retransmits [`Self::oldest_unacked`] when a
/// timer expires.
#[derive(Debug)]
pub struct SendChannel<T> {
    next_seq: u64,
    /// Unacked frames in sequence order: `(seq, payload, payload_bytes)`.
    inflight: std::collections::VecDeque<(u64, T, u64)>,
    /// Consecutive retransmissions of the current oldest frame; resets
    /// whenever an ack makes progress.
    retries: u32,
}

impl<T: Clone> SendChannel<T> {
    /// An empty channel; the first frame takes sequence number 1.
    pub fn new() -> SendChannel<T> {
        SendChannel {
            next_seq: 1,
            inflight: std::collections::VecDeque::new(),
            retries: 0,
        }
    }

    /// Assigns the next sequence number to `payload` and buffers it until
    /// acknowledged. Returns the assigned sequence number; the host
    /// transmits the frame (once now, again on timeout).
    pub fn stage(&mut self, payload: T, payload_bytes: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.inflight.push_back((seq, payload, payload_bytes));
        seq
    }

    /// Applies a cumulative ack: every frame with `seq <= ack` is
    /// delivered and dropped from the buffer. Returns `true` if the ack
    /// made progress (the backoff resets in that case).
    pub fn on_ack(&mut self, ack: u64) -> bool {
        let mut progressed = false;
        while let Some((seq, _, _)) = self.inflight.front() {
            if *seq <= ack {
                self.inflight.pop_front();
                progressed = true;
            } else {
                break;
            }
        }
        if progressed {
            self.retries = 0;
        }
        progressed
    }

    /// The oldest unacked frame, if any: `(seq, payload clone, bytes)`.
    /// This is what a timeout retransmits (go-back-N resends from the
    /// front; later inflight frames are repaired by the cumulative ack).
    pub fn oldest_unacked(&self) -> Option<(u64, T, u64)> {
        self.inflight
            .front()
            .map(|(seq, payload, bytes)| (*seq, payload.clone(), *bytes))
    }

    /// Whether any frame is awaiting an ack (⇒ a retransmit timer should
    /// be armed).
    pub fn has_inflight(&self) -> bool {
        !self.inflight.is_empty()
    }

    /// Frames currently awaiting acknowledgement.
    pub fn inflight_len(&self) -> usize {
        self.inflight.len()
    }

    /// Records a retransmission of the oldest frame and returns the
    /// timeout to use for the *next* retry (exponential backoff).
    pub fn note_retransmit(&mut self, params: &ReliableParams) -> u64 {
        self.retries = self.retries.saturating_add(1);
        params.rto_after(self.retries)
    }

    /// The highest sequence number assigned so far.
    pub fn last_seq(&self) -> u64 {
        self.next_seq - 1
    }
}

impl<T: Clone> Default for SendChannel<T> {
    fn default() -> SendChannel<T> {
        SendChannel::new()
    }
}

/// What [`RecvChannel::on_data`] did with an incoming frame.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Accept {
    /// The frame was in sequence; it (and possibly buffered successors)
    /// are ready to deliver.
    InOrder,
    /// The frame arrived ahead of sequence and was buffered.
    Buffered,
    /// The frame was a duplicate of something already delivered (or
    /// already buffered) and was discarded.
    Duplicate,
}

/// Receiver side of one directed reliable channel.
#[derive(Debug)]
pub struct RecvChannel<T> {
    /// Highest sequence number delivered with no gaps — the cumulative
    /// ack this receiver advertises.
    cum_ack: u64,
    /// Early arrivals waiting for the gap to fill, keyed by sequence.
    pending: BTreeMap<u64, T>,
}

impl<T> RecvChannel<T> {
    /// An empty channel expecting sequence number 1 first.
    pub fn new() -> RecvChannel<T> {
        RecvChannel {
            cum_ack: 0,
            pending: BTreeMap::new(),
        }
    }

    /// Processes an incoming data frame. In-sequence frames (plus any
    /// buffered successors they unblock) are appended to `deliver` in
    /// order; early frames are buffered; duplicates are dropped.
    pub fn on_data(&mut self, seq: u64, payload: T, deliver: &mut Vec<T>) -> Accept {
        if seq <= self.cum_ack {
            return Accept::Duplicate;
        }
        if seq == self.cum_ack + 1 {
            self.cum_ack = seq;
            deliver.push(payload);
            while let Some(p) = self.pending.remove(&(self.cum_ack + 1)) {
                self.cum_ack += 1;
                deliver.push(p);
            }
            Accept::InOrder
        } else {
            match self.pending.entry(seq) {
                std::collections::btree_map::Entry::Occupied(_) => Accept::Duplicate,
                std::collections::btree_map::Entry::Vacant(slot) => {
                    slot.insert(payload);
                    Accept::Buffered
                }
            }
        }
    }

    /// The cumulative ack to advertise: every frame up to and including
    /// this sequence number has been delivered.
    pub fn cum_ack(&self) -> u64 {
        self.cum_ack
    }

    /// Frames buffered ahead of sequence.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }
}

impl<T> Default for RecvChannel<T> {
    fn default() -> RecvChannel<T> {
        RecvChannel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_order_stream_delivers_immediately_and_acks_advance() {
        let mut tx: SendChannel<&str> = SendChannel::new();
        let mut rx: RecvChannel<&str> = RecvChannel::new();
        let mut out = Vec::new();
        for (i, word) in ["a", "b", "c"].iter().enumerate() {
            let seq = tx.stage(word, 8);
            assert_eq!(seq, i as u64 + 1);
            assert_eq!(rx.on_data(seq, *word, &mut out), Accept::InOrder);
        }
        assert_eq!(out, vec!["a", "b", "c"]);
        assert_eq!(rx.cum_ack(), 3);
        assert!(tx.on_ack(rx.cum_ack()));
        assert!(!tx.has_inflight());
    }

    #[test]
    fn out_of_order_frames_are_buffered_then_released_in_order() {
        let mut rx: RecvChannel<u32> = RecvChannel::new();
        let mut out = Vec::new();
        assert_eq!(rx.on_data(3, 30, &mut out), Accept::Buffered);
        assert_eq!(rx.on_data(2, 20, &mut out), Accept::Buffered);
        assert!(out.is_empty());
        assert_eq!(rx.cum_ack(), 0);
        assert_eq!(rx.on_data(1, 10, &mut out), Accept::InOrder);
        assert_eq!(out, vec![10, 20, 30]);
        assert_eq!(rx.cum_ack(), 3);
        assert_eq!(rx.pending_len(), 0);
    }

    #[test]
    fn duplicates_are_dropped_everywhere() {
        let mut rx: RecvChannel<u32> = RecvChannel::new();
        let mut out = Vec::new();
        rx.on_data(1, 10, &mut out);
        // Duplicate of a delivered frame.
        assert_eq!(rx.on_data(1, 10, &mut out), Accept::Duplicate);
        // Duplicate of a buffered frame.
        assert_eq!(rx.on_data(3, 30, &mut out), Accept::Buffered);
        assert_eq!(rx.on_data(3, 30, &mut out), Accept::Duplicate);
        assert_eq!(out, vec![10]);
    }

    #[test]
    fn cumulative_ack_covers_everything_below() {
        let mut tx: SendChannel<u32> = SendChannel::new();
        for v in 0..5 {
            tx.stage(v, 4);
        }
        assert_eq!(tx.inflight_len(), 5);
        // A single ack of 3 releases frames 1..=3.
        assert!(tx.on_ack(3));
        assert_eq!(tx.inflight_len(), 2);
        assert_eq!(tx.oldest_unacked().map(|(s, _, _)| s), Some(4));
        // A stale ack makes no progress.
        assert!(!tx.on_ack(2));
        assert_eq!(tx.inflight_len(), 2);
    }

    #[test]
    fn backoff_doubles_until_cap_and_resets_on_progress() {
        let params = ReliableParams {
            rto_cycles: 100,
            backoff_cap: 3,
            timer_cost_cycles: 0,
        };
        let mut tx: SendChannel<u32> = SendChannel::new();
        tx.stage(1, 4);
        assert_eq!(tx.note_retransmit(&params), 200);
        assert_eq!(tx.note_retransmit(&params), 400);
        assert_eq!(tx.note_retransmit(&params), 800);
        // Capped.
        assert_eq!(tx.note_retransmit(&params), 800);
        // Progress resets the backoff.
        tx.stage(2, 4);
        assert!(tx.on_ack(1));
        assert_eq!(tx.note_retransmit(&params), 200);
    }

    #[test]
    fn retransmission_of_oldest_survives_any_single_loss() {
        // Simulated loss: frame 2 of 4 is lost; the receiver acks 1; the
        // sender retransmits from the oldest unacked (2), after which the
        // buffered 3 and 4 flush.
        let mut tx: SendChannel<u32> = SendChannel::new();
        let mut rx: RecvChannel<u32> = RecvChannel::new();
        let mut out = Vec::new();
        let frames: Vec<u64> = (10..14).map(|v| tx.stage(v, 4)).collect();
        rx.on_data(frames[0], 10, &mut out); // 1 arrives
                                             // 2 lost.
        rx.on_data(frames[2], 12, &mut out); // 3 buffered
        rx.on_data(frames[3], 13, &mut out); // 4 buffered
        assert_eq!(out, vec![10]);
        tx.on_ack(rx.cum_ack()); // ack 1
        let (seq, payload, _) = tx.oldest_unacked().expect("2 still inflight");
        assert_eq!(seq, 2);
        assert_eq!(rx.on_data(seq, payload, &mut out), Accept::InOrder);
        assert_eq!(out, vec![10, 11, 12, 13]);
        assert_eq!(rx.cum_ack(), 4);
        assert!(tx.on_ack(rx.cum_ack()));
        assert!(!tx.has_inflight());
    }

    #[test]
    fn stats_aggregate() {
        let mut a = LinkStats {
            data_frames_sent: 5,
            acks_sent: 2,
            retransmits: 1,
            timer_fires: 3,
            dup_frames_dropped: 1,
            out_of_order_buffered: 2,
            stale_epoch_fenced: 0,
            peer_recoveries_observed: 0,
        };
        a.add(&LinkStats {
            acks_sent: 1,
            retransmits: 4,
            stale_epoch_fenced: 2,
            peer_recoveries_observed: 1,
            ..LinkStats::default()
        });
        assert_eq!(a.acks_sent, 3);
        assert_eq!(a.retransmits, 5);
        assert_eq!(a.stale_epoch_fenced, 2);
        assert_eq!(a.peer_recoveries_observed, 1);
        assert_eq!(a.overhead_frames(), 8);
    }
}
