//! Combining-tree barriers: the scale-out replacement for the flat
//! manager-side [`BarrierSite`](crate::BarrierSite).
//!
//! The flat site funnels every processor's `UpdateSet` into one manager,
//! which merges P arrivals and broadcasts P releases — O(P) messages and
//! O(P · set) merge work at a single node. A combining tree bounds both:
//! processors form a k-ary tree rooted at the barrier's manager, arrivals
//! merge subtree contributions *up* the tree, and the release fans the
//! fully merged set back *down*, so no node sends or receives more than
//! `arity` barrier messages per episode.
//!
//! Determinism: [`UpdateSet::merge_newer`] breaks timestamp ties toward
//! its argument, so merge results depend on merge *order*. Every node
//! therefore stashes its children's sets and merges in a canonical order
//! — its own contribution first, then children by ascending slot — which
//! makes the global merge the pre-order fold of the tree, independent of
//! message interleaving. When timestamps are unique (or contributions
//! disjoint, as with partitioned barriers), the result is identical to
//! the flat site's merge under any arrival order.
//!
//! Like [`HomeLock`](crate::HomeLock) and the flat site, the state
//! machine is pure: events in, instructions out, no transport in sight.

use crate::home::BarrierError;
use crate::update::UpdateSet;

/// The k-ary tree a barrier's processors form, rooted at its manager.
///
/// Processor `p` sits at position `(p - root) mod procs`, and positions
/// form a standard heap layout: the parent of position `i` is
/// `(i - 1) / arity`, its children are `arity·i + 1 ..= arity·i + arity`.
/// Rotating by `root` keeps managers of different barriers (and of
/// different [`HomeMap`](crate::HomeMap) placements) from all rooting at
/// processor 0.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TreeTopology {
    procs: usize,
    arity: usize,
    root: usize,
}

impl TreeTopology {
    /// A tree over `procs` processors with the given fan-in, rooted at
    /// `root`.
    ///
    /// # Panics
    ///
    /// Panics if `arity < 2`, `procs == 0`, or `root >= procs`.
    pub fn new(procs: usize, arity: usize, root: usize) -> TreeTopology {
        assert!(arity >= 2, "a combining tree needs arity >= 2");
        assert!(procs > 0, "empty cluster");
        assert!(root < procs, "root {root} out of range for {procs} procs");
        TreeTopology { procs, arity, root }
    }

    /// The configured fan-in bound.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// The root processor (the barrier's manager).
    pub fn root(&self) -> usize {
        self.root
    }

    fn pos(&self, p: usize) -> usize {
        (p + self.procs - self.root) % self.procs
    }

    fn proc_at(&self, pos: usize) -> usize {
        (pos + self.root) % self.procs
    }

    /// The processor `p` reports to, or `None` for the root.
    pub fn parent(&self, p: usize) -> Option<usize> {
        let pos = self.pos(p);
        (pos > 0).then(|| self.proc_at((pos - 1) / self.arity))
    }

    /// The processors reporting to `p`, in canonical (slot) order. At
    /// most `arity` of them.
    pub fn children(&self, p: usize) -> Vec<usize> {
        let pos = self.pos(p);
        (self.arity * pos + 1..=self.arity * pos + self.arity)
            .take_while(|&c| c < self.procs)
            .map(|c| self.proc_at(c))
            .collect()
    }
}

/// What a [`TreeSite`] asks its node to do after absorbing an arrival.
#[derive(Debug, PartialEq)]
pub enum TreeStep {
    /// The subtree is not complete yet; keep waiting.
    Wait,
    /// The subtree is complete: forward its merged contribution to
    /// `parent` as a barrier arrival.
    SendUp {
        /// This node's parent in the tree.
        parent: usize,
        /// The canonical merge of this subtree's contributions.
        set: UpdateSet,
    },
    /// The root's subtree — the whole cluster — is complete: start the
    /// release fan-down with the fully merged set.
    Release {
        /// The canonical merge of every processor's contribution.
        merged: UpdateSet,
    },
}

/// Per-node, per-barrier combining-tree state.
pub struct TreeSite {
    me: usize,
    topo: TreeTopology,
    episode: u64,
    /// This node's own contribution, pending subtree completion.
    own: Option<UpdateSet>,
    /// Whether the own contribution arrived this episode (`own` itself is
    /// consumed on subtree completion, so it cannot double as the flag).
    own_arrived: bool,
    /// A copy of `own` kept for the release-time self-exclusion.
    own_exclude: UpdateSet,
    /// Stashed child subtree sets, indexed by child slot. Stash-then-merge
    /// (rather than merge-on-arrival) is what pins the canonical order.
    child_sets: Vec<Option<UpdateSet>>,
    /// Barrier messages absorbed this episode — the quantity the tree
    /// exists to bound.
    fanin: usize,
    /// High-water fan-in across episodes (observable by tests and
    /// harness assertions).
    max_fanin: usize,
    releases: u64,
}

impl TreeSite {
    /// The site processor `me` runs for a barrier whose tree is `topo`.
    pub fn new(me: usize, topo: TreeTopology) -> TreeSite {
        let children = topo.children(me).len();
        TreeSite {
            me,
            topo,
            episode: 0,
            own: None,
            own_arrived: false,
            own_exclude: UpdateSet::new(),
            child_sets: (0..children).map(|_| None).collect(),
            fanin: 0,
            max_fanin: 0,
            releases: 0,
        }
    }

    /// The episode currently being gathered.
    pub fn episode(&self) -> u64 {
        self.episode
    }

    /// This node's children, in canonical order.
    pub fn children(&self) -> Vec<usize> {
        self.topo.children(self.me)
    }

    /// Highest number of barrier messages this node absorbed in any one
    /// episode. Bounded by the tree's arity by construction; asserted so
    /// a topology bug cannot silently recreate the flat hot-spot.
    pub fn max_fanin(&self) -> usize {
        self.max_fanin
    }

    /// Releases this node has fanned down (one per completed episode).
    pub fn releases(&self) -> u64 {
        self.releases
    }

    /// This node's own processor arrives with its collected updates.
    pub fn arrive_own(&mut self, set: UpdateSet) -> Result<TreeStep, BarrierError> {
        if self.own_arrived {
            return Err(BarrierError::DoubleArrival {
                from: self.me,
                episode: self.episode,
            });
        }
        self.own_arrived = true;
        self.own_exclude = set.clone();
        self.own = Some(set);
        Ok(self.try_complete())
    }

    /// A child's merged subtree contribution arrives.
    pub fn arrive_child(&mut self, from: usize, set: UpdateSet) -> Result<TreeStep, BarrierError> {
        let Some(slot) = self.topo.children(self.me).iter().position(|&c| c == from) else {
            return Err(BarrierError::NotAChild { from });
        };
        if self.child_sets[slot].is_some() {
            return Err(BarrierError::DoubleArrival {
                from,
                episode: self.episode,
            });
        }
        self.child_sets[slot] = Some(set);
        self.fanin += 1;
        assert!(
            self.fanin <= self.topo.arity(),
            "tree node {} fan-in {} exceeds arity {}",
            self.me,
            self.fanin,
            self.topo.arity()
        );
        self.max_fanin = self.max_fanin.max(self.fanin);
        Ok(self.try_complete())
    }

    fn try_complete(&mut self) -> TreeStep {
        if self.own.is_none() || self.child_sets.iter().any(Option::is_none) {
            return TreeStep::Wait;
        }
        // Canonical merge: own contribution first, then children by slot.
        let mut merged = self.own.take().expect("own checked above");
        for slot in &mut self.child_sets {
            merged.merge_newer(slot.take().expect("children checked above"));
        }
        self.fanin = 0;
        match self.topo.parent(self.me) {
            Some(parent) => TreeStep::SendUp {
                parent,
                set: merged,
            },
            None => TreeStep::Release { merged },
        }
    }

    /// The release reaches this node: advance the episode and return the
    /// children to forward it to plus the locally applicable subset (the
    /// merged set minus this processor's own contribution).
    pub fn on_release(&mut self, merged: &UpdateSet) -> (Vec<usize>, UpdateSet) {
        self.episode += 1;
        self.releases += 1;
        self.own_arrived = false;
        let local = merged.excluding_addrs_of(&self.own_exclude);
        self.own_exclude = UpdateSet::new();
        (self.topo.children(self.me), local)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::home::BarrierSite;
    use crate::update::UpdateItem;

    const PROCS: [usize; 4] = [3, 7, 65, 513];
    const ARITIES: [usize; 3] = [2, 4, 16];

    #[test]
    fn topology_is_a_well_formed_tree() {
        for procs in PROCS {
            for arity in ARITIES {
                for root in [0, procs - 1, procs / 2] {
                    let t = TreeTopology::new(procs, arity, root);
                    assert_eq!(t.parent(root), None);
                    let mut seen_as_child = vec![0usize; procs];
                    for p in 0..procs {
                        let kids = t.children(p);
                        assert!(kids.len() <= arity, "fan-in over arity at {p}");
                        for c in kids {
                            assert_eq!(t.parent(c), Some(p), "parent/child disagree");
                            seen_as_child[c] += 1;
                        }
                    }
                    // Every non-root is someone's child exactly once.
                    for (p, seen) in seen_as_child.iter().enumerate() {
                        assert_eq!(
                            *seen,
                            usize::from(p != root),
                            "procs {procs} arity {arity} root {root} proc {p}"
                        );
                    }
                }
            }
        }
    }

    fn item(addr: u64, ts: u64) -> UpdateItem {
        UpdateItem {
            addr,
            data: vec![(ts % 251) as u8; 4],
            ts,
        }
    }

    /// One processor's contribution for an episode: a couple of items at
    /// addresses that overlap across processors (stressing the merge)
    /// with unique timestamps (so merge order cannot matter and the flat
    /// oracle must agree exactly).
    fn contribution(p: usize, procs: usize, episode: u64) -> UpdateSet {
        let base = episode * (2 * procs as u64 + 7);
        UpdateSet {
            items: vec![
                item(8 * (p as u64 % 5), base + p as u64 + 1),
                item(1024 + 8 * p as u64, base + procs as u64 + p as u64 + 1),
            ],
        }
    }

    /// Drives a full cluster of tree sites through `episodes` episodes,
    /// delivering queued messages in a rotating (adversarial-ish but
    /// deterministic) order, and checks per-episode invariants against
    /// the flat-site oracle.
    fn run_episodes(procs: usize, arity: usize, root: usize, episodes: u64) {
        let topo = TreeTopology::new(procs, arity, root);
        let mut sites: Vec<TreeSite> = (0..procs).map(|p| TreeSite::new(p, topo)).collect();

        for episode in 0..episodes {
            // Pending messages: (dst, src, set) arrivals and (dst, set)
            // releases.
            let mut ups: Vec<(usize, usize, UpdateSet)> = Vec::new();
            let mut downs: Vec<(usize, UpdateSet)> = Vec::new();
            let mut released = vec![0usize; procs];
            let mut locals: Vec<Option<UpdateSet>> = (0..procs).map(|_| None).collect();
            let mut root_merged: Option<UpdateSet> = None;

            let step = |site: &mut TreeSite,
                        s: TreeStep,
                        ups: &mut Vec<(usize, usize, UpdateSet)>,
                        root_merged: &mut Option<UpdateSet>| match s {
                TreeStep::Wait => {}
                TreeStep::SendUp { parent, set } => ups.push((parent, site.me, set)),
                TreeStep::Release { merged } => {
                    assert!(root_merged.is_none(), "root released twice");
                    *root_merged = Some(merged);
                }
            };

            // Everyone arrives; own arrivals in a rotated order.
            for i in 0..procs {
                let p = (i + episode as usize) % procs;
                let s = sites[p]
                    .arrive_own(contribution(p, procs, episode))
                    .expect("clean own arrival");
                step(&mut sites[p], s, &mut ups, &mut root_merged);
            }
            // Drain the up-phase, delivering from alternating ends so
            // deep and shallow subtrees interleave.
            let mut flip = false;
            while !ups.is_empty() {
                let (dst, src, set) = if flip {
                    ups.remove(0)
                } else {
                    ups.pop().expect("nonempty")
                };
                flip = !flip;
                let s = sites[dst]
                    .arrive_child(src, set)
                    .expect("clean child arrival");
                step(&mut sites[dst], s, &mut ups, &mut root_merged);
            }
            let merged = root_merged.expect("tree completed");

            // Flat oracle fed in the tree's canonical (pre-order) merge
            // order: timestamps are unique, so any order must match, and
            // this order must match *exactly*.
            let mut flat = BarrierSite::new(procs);
            let mut order = vec![root];
            let mut k = 0;
            while k < order.len() {
                order.extend(topo.children(order[k]));
                k += 1;
            }
            let mut oracle = None;
            for &p in &order {
                if let Some(rel) = flat
                    .arrive(p, contribution(p, procs, episode))
                    .expect("clean flat arrival")
                {
                    oracle = Some(rel);
                }
            }
            let oracle = oracle.expect("flat released");

            // Fan the release down.
            downs.push((root, merged.clone()));
            while let Some((dst, set)) = downs.pop() {
                let (kids, local) = sites[dst].on_release(&set);
                released[dst] += 1;
                locals[dst] = Some(local);
                for c in kids {
                    downs.push((c, set.clone()));
                }
            }

            for p in 0..procs {
                assert_eq!(released[p], 1, "episode {episode}: releases at {p}");
                assert_eq!(
                    locals[p].as_ref().expect("released"),
                    &oracle.per_proc[p],
                    "episode {episode}: local set at {p} diverges from flat oracle"
                );
                assert!(
                    sites[p].max_fanin() <= arity,
                    "episode {episode}: fan-in {} > arity {arity} at {p}",
                    sites[p].max_fanin()
                );
                assert_eq!(sites[p].episode(), episode + 1);
            }
            // The root's merged set is the oracle's merge exactly.
            let mut flat_merged = UpdateSet::new();
            for &p in &order {
                flat_merged.merge_newer(contribution(p, procs, episode));
            }
            assert_eq!(merged, flat_merged, "episode {episode}: merged diverges");
        }
    }

    #[test]
    fn episodes_match_flat_oracle_at_odd_proc_counts_and_arities() {
        for procs in PROCS {
            for arity in ARITIES {
                let root = procs / 3;
                // 513 procs is slow under the quadratic oracle check;
                // two episodes still cross the reset path.
                let episodes = if procs > 100 { 2 } else { 3 };
                run_episodes(procs, arity, root, episodes);
            }
        }
    }

    #[test]
    fn double_own_arrival_is_an_error() {
        let topo = TreeTopology::new(3, 2, 0);
        let mut s = TreeSite::new(1, topo);
        s.arrive_own(UpdateSet::new()).expect("first is clean");
        assert_eq!(
            s.arrive_own(UpdateSet::new()),
            Err(BarrierError::DoubleArrival {
                from: 1,
                episode: 0
            })
        );
    }

    #[test]
    fn double_child_arrival_is_an_error() {
        let topo = TreeTopology::new(7, 2, 0);
        let mut s = TreeSite::new(0, topo);
        let child = topo.children(0)[0];
        s.arrive_child(child, UpdateSet::new())
            .expect("first is clean");
        assert_eq!(
            s.arrive_child(child, UpdateSet::new()),
            Err(BarrierError::DoubleArrival {
                from: child,
                episode: 0
            })
        );
    }

    #[test]
    fn arrival_from_non_child_is_an_error() {
        let topo = TreeTopology::new(7, 2, 0);
        // Proc 6's children are empty; proc 5 is nobody's child of 6.
        let mut s = TreeSite::new(6, topo);
        assert_eq!(
            s.arrive_child(5, UpdateSet::new()),
            Err(BarrierError::NotAChild { from: 5 })
        );
    }

    #[test]
    fn single_processor_tree_releases_immediately() {
        let topo = TreeTopology::new(1, 2, 0);
        let mut s = TreeSite::new(0, topo);
        let set = UpdateSet {
            items: vec![item(0, 1)],
        };
        match s.arrive_own(set.clone()).expect("clean") {
            TreeStep::Release { merged } => {
                let (kids, local) = s.on_release(&merged);
                assert!(kids.is_empty());
                assert!(local.is_empty(), "own contribution excluded");
            }
            other => panic!("expected release, got {other:?}"),
        }
    }
}
