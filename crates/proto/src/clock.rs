//! Lamport logical clocks (paper §3.2).

use midway_mem::EPOCH;

/// A processor's Lamport clock.
///
/// RT-DSM dirtybits are timestamps drawn from this clock; it provides "an
/// ordering on the updates to an individual cache line". Clock values start
/// above [`EPOCH`] so a fresh cache line (timestamp `EPOCH`) is older than
/// any real update, and the value `0` remains free as the dirty marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LamportClock {
    now: u64,
}

impl LamportClock {
    /// A fresh clock, strictly after [`EPOCH`].
    pub fn new() -> LamportClock {
        LamportClock { now: EPOCH + 1 }
    }

    /// The current logical time.
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advances for a local event and returns the new time.
    pub fn tick(&mut self) -> u64 {
        self.now += 1;
        self.now
    }

    /// Merges a remote observation: the clock moves past `remote`.
    pub fn observe(&mut self, remote: u64) -> u64 {
        self.now = self.now.max(remote) + 1;
        self.now
    }
}

impl Default for LamportClock {
    fn default() -> Self {
        LamportClock::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_after_epoch() {
        assert!(LamportClock::new().now() > EPOCH);
        assert!(LamportClock::new().now() > 0);
    }

    #[test]
    fn tick_is_monotonic() {
        let mut c = LamportClock::new();
        let a = c.tick();
        let b = c.tick();
        assert!(b > a);
    }

    #[test]
    fn observe_jumps_past_remote() {
        let mut c = LamportClock::new();
        assert_eq!(c.observe(100), 101);
        // Older observations still advance locally.
        let before = c.now();
        assert!(c.observe(5) > before);
    }
}
