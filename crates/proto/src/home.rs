//! Home-node lock and manager-node barrier state machines.
//!
//! Paper §3: "When a processor acquires a lock that was last acquired on
//! another processor, the first processor (the requester) must send a
//! message to the second processor (the releaser)". We route requests
//! through a static *home* that serializes grants and knows the owner of
//! record; the data (and write collection) flows directly from the last
//! releaser to the requester.
//!
//! These state machines are pure: they receive events and return the
//! transfers to initiate, so they can be tested without a simulator.

use std::collections::VecDeque;

use crate::sync_id::Mode;
use crate::update::UpdateSet;

/// An opaque "what the requester has already seen" token, forwarded
/// verbatim from the acquire request to the releaser. RT-DSM stores a
/// Lamport time; VM-DSM stores (incarnation, binding version).
pub type SeenToken = (u64, u64);

/// A data transfer the home asks the owner of record to perform.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Transfer {
    /// The processor that must run write collection (the owner of record).
    pub old_owner: usize,
    /// The processor acquiring the lock.
    pub requester: usize,
    /// The acquisition mode.
    pub mode: Mode,
    /// The requester's last-seen token.
    pub seen: SeenToken,
}

/// Home-side state of one lock.
///
/// Fairness is FIFO: a request queues behind earlier waiters even if it
/// could be granted immediately, so writers never starve behind a stream
/// of readers. Consecutive readers at the head are granted together.
#[derive(Debug)]
pub struct HomeLock {
    owner: usize,
    held_exclusive: bool,
    readers: usize,
    queue: VecDeque<(usize, Mode, SeenToken)>,
}

impl HomeLock {
    /// Creates the lock with `initial_owner` as owner of record (whose
    /// zero-initialized cache is the initial data).
    pub fn new(initial_owner: usize) -> HomeLock {
        HomeLock {
            owner: initial_owner,
            held_exclusive: false,
            readers: 0,
            queue: VecDeque::new(),
        }
    }

    /// The owner of record: the last exclusive holder (or the initial
    /// owner), whose cache is current.
    pub fn owner(&self) -> usize {
        self.owner
    }

    /// Whether the lock is currently held exclusively.
    pub fn held_exclusive(&self) -> bool {
        self.held_exclusive
    }

    /// Number of active readers.
    pub fn readers(&self) -> usize {
        self.readers
    }

    /// Processor `from` requests the lock. Returns transfers to initiate.
    pub fn acquire(&mut self, from: usize, mode: Mode, seen: SeenToken) -> Vec<Transfer> {
        self.queue.push_back((from, mode, seen));
        self.drain()
    }

    /// Processor `from` releases the lock. Returns transfers to initiate.
    ///
    /// # Panics
    ///
    /// Panics on a release that does not match a grant (protocol bug).
    pub fn release(&mut self, from: usize, mode: Mode) -> Vec<Transfer> {
        match mode {
            Mode::Exclusive => {
                assert!(
                    self.held_exclusive && self.owner == from,
                    "exclusive release by non-owner {from}"
                );
                self.held_exclusive = false;
            }
            Mode::Shared => {
                assert!(self.readers > 0, "shared release with no readers");
                self.readers -= 1;
            }
        }
        self.drain()
    }

    fn grantable(&self, mode: Mode) -> bool {
        match mode {
            Mode::Exclusive => !self.held_exclusive && self.readers == 0,
            Mode::Shared => !self.held_exclusive,
        }
    }

    fn drain(&mut self) -> Vec<Transfer> {
        let mut out = Vec::new();
        while let Some(&(from, mode, seen)) = self.queue.front() {
            if !self.grantable(mode) {
                break;
            }
            self.queue.pop_front();
            match mode {
                Mode::Exclusive => {
                    self.held_exclusive = true;
                    let old = self.owner;
                    self.owner = from;
                    out.push(Transfer {
                        old_owner: old,
                        requester: from,
                        mode,
                        seen,
                    });
                }
                Mode::Shared => {
                    self.readers += 1;
                    out.push(Transfer {
                        old_owner: self.owner,
                        requester: from,
                        mode,
                        seen,
                    });
                }
            }
        }
        out
    }
}

/// A malformed barrier arrival: the sender broke the protocol, so the
/// site cannot make progress. Callers surface this through the
/// transport's `protocol_violation` path rather than panicking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BarrierError {
    /// A processor arrived twice in one episode.
    DoubleArrival {
        /// The offending processor.
        from: usize,
        /// The episode being gathered when it re-arrived.
        episode: u64,
    },
    /// An arrival from a processor that is not a child of this node in
    /// the combining tree.
    NotAChild {
        /// The offending processor.
        from: usize,
    },
}

impl std::fmt::Display for BarrierError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BarrierError::DoubleArrival { from, episode } => {
                write!(f, "processor {from} arrived twice in episode {episode}")
            }
            BarrierError::NotAChild { from } => {
                write!(
                    f,
                    "arrival from processor {from}, which is not a child of this node"
                )
            }
        }
    }
}

/// What the barrier manager hands back when the last processor arrives.
#[derive(Debug, PartialEq)]
pub struct BarrierRelease {
    /// The episode that just completed.
    pub episode: u64,
    /// Per-processor release payloads: the merged updates minus each
    /// processor's own contribution.
    pub per_proc: Vec<UpdateSet>,
}

/// Manager-side state of one barrier.
#[derive(Debug)]
pub struct BarrierSite {
    procs: usize,
    episode: u64,
    arrived: Vec<bool>,
    arrivals: usize,
    merged: UpdateSet,
    contributions: Vec<UpdateSet>,
}

impl BarrierSite {
    /// A barrier over `procs` processors, at episode 0.
    pub fn new(procs: usize) -> BarrierSite {
        BarrierSite {
            procs,
            episode: 0,
            arrived: vec![false; procs],
            arrivals: 0,
            merged: UpdateSet::new(),
            contributions: (0..procs).map(|_| UpdateSet::new()).collect(),
        }
    }

    /// The episode currently being gathered.
    pub fn episode(&self) -> u64 {
        self.episode
    }

    /// Processor `from` arrives with its collected updates. Returns the
    /// release when this completes the episode, or a [`BarrierError`] on
    /// a double arrival (a protocol violation the caller must surface).
    pub fn arrive(
        &mut self,
        from: usize,
        update: UpdateSet,
    ) -> Result<Option<BarrierRelease>, BarrierError> {
        if self.arrived[from] {
            return Err(BarrierError::DoubleArrival {
                from,
                episode: self.episode,
            });
        }
        self.arrived[from] = true;
        self.arrivals += 1;
        self.merged.merge_newer(update.clone());
        self.contributions[from] = update;
        if self.arrivals < self.procs {
            return Ok(None);
        }
        // Episode complete: build per-processor payloads and reset.
        let merged = std::mem::take(&mut self.merged);
        let contributions = std::mem::replace(
            &mut self.contributions,
            (0..self.procs).map(|_| UpdateSet::new()).collect(),
        );
        let per_proc = contributions
            .iter()
            .map(|own| merged.excluding_addrs_of(own))
            .collect();
        let episode = self.episode;
        self.episode += 1;
        self.arrived.fill(false);
        self.arrivals = 0;
        Ok(Some(BarrierRelease { episode, per_proc }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::update::UpdateItem;

    const SEEN: SeenToken = (0, 0);

    #[test]
    fn uncontended_exclusive_transfers_from_owner_of_record() {
        let mut l = HomeLock::new(0);
        let t = l.acquire(3, Mode::Exclusive, SEEN);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].old_owner, 0);
        assert_eq!(t[0].requester, 3);
        assert_eq!(l.owner(), 3);
        assert!(l.held_exclusive());
    }

    #[test]
    fn contended_exclusive_queues_fifo() {
        let mut l = HomeLock::new(0);
        assert_eq!(l.acquire(1, Mode::Exclusive, SEEN).len(), 1);
        assert!(l.acquire(2, Mode::Exclusive, SEEN).is_empty());
        assert!(l.acquire(3, Mode::Exclusive, SEEN).is_empty());
        let t = l.release(1, Mode::Exclusive);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].old_owner, 1);
        assert_eq!(t[0].requester, 2);
        let t = l.release(2, Mode::Exclusive);
        assert_eq!(t[0].requester, 3);
    }

    #[test]
    fn readers_share_and_do_not_take_ownership() {
        let mut l = HomeLock::new(0);
        let t1 = l.acquire(1, Mode::Shared, SEEN);
        let t2 = l.acquire(2, Mode::Shared, SEEN);
        assert_eq!(t1[0].old_owner, 0);
        assert_eq!(t2[0].old_owner, 0);
        assert_eq!(l.owner(), 0, "readers leave the owner of record alone");
        assert_eq!(l.readers(), 2);
    }

    #[test]
    fn writer_waits_for_readers_then_readers_batch_after() {
        let mut l = HomeLock::new(0);
        l.acquire(1, Mode::Shared, SEEN);
        assert!(l.acquire(2, Mode::Exclusive, SEEN).is_empty());
        // A reader behind a waiting writer queues (no starvation).
        assert!(l.acquire(3, Mode::Shared, SEEN).is_empty());
        let t = l.release(1, Mode::Shared);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].requester, 2);
        // Writer done: the queued reader is granted from the new owner.
        let t = l.release(2, Mode::Exclusive);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].requester, 3);
        assert_eq!(t[0].old_owner, 2);
    }

    #[test]
    fn reacquire_by_owner_transfers_from_self() {
        let mut l = HomeLock::new(5);
        let t = l.acquire(5, Mode::Exclusive, SEEN);
        assert_eq!(t[0].old_owner, 5);
        assert_eq!(t[0].requester, 5);
    }

    #[test]
    #[should_panic(expected = "exclusive release by non-owner")]
    fn mismatched_release_panics() {
        let mut l = HomeLock::new(0);
        l.acquire(1, Mode::Exclusive, SEEN);
        l.release(2, Mode::Exclusive);
    }

    #[test]
    fn reacquire_while_holding_queues_until_release() {
        // A re-entrant exclusive acquire is not granted while the first
        // hold is outstanding — it waits its turn like any other request.
        let mut l = HomeLock::new(0);
        assert_eq!(l.acquire(1, Mode::Exclusive, SEEN).len(), 1);
        assert!(l.acquire(1, Mode::Exclusive, SEEN).is_empty());
        let t = l.release(1, Mode::Exclusive);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].requester, 1);
        assert_eq!(t[0].old_owner, 1, "re-grant transfers from itself");
        assert!(l.held_exclusive());
    }

    #[test]
    fn exclusive_to_shared_grants_reader_batch_from_last_writer() {
        // Downgrade transition: when the writer releases, every queued
        // reader is granted in one drain, each transferring from the
        // writer (the owner of record), in FIFO order.
        let mut l = HomeLock::new(0);
        l.acquire(1, Mode::Exclusive, SEEN);
        assert!(l.acquire(2, Mode::Shared, SEEN).is_empty());
        assert!(l.acquire(3, Mode::Shared, SEEN).is_empty());
        assert!(l.acquire(4, Mode::Shared, SEEN).is_empty());
        let t = l.release(1, Mode::Exclusive);
        assert_eq!(
            t.iter().map(|t| t.requester).collect::<Vec<_>>(),
            vec![2, 3, 4],
            "readers batch in arrival order"
        );
        assert!(t.iter().all(|t| t.old_owner == 1));
        assert_eq!(l.readers(), 3);
        assert_eq!(
            l.owner(),
            1,
            "shared grants leave ownership with the writer"
        );
    }

    #[test]
    fn shared_to_exclusive_waits_for_every_reader() {
        // Upgrade transition: the writer is granted only when the last
        // reader leaves, and then takes ownership of record.
        let mut l = HomeLock::new(0);
        l.acquire(1, Mode::Shared, SEEN);
        l.acquire(2, Mode::Shared, SEEN);
        assert!(l.acquire(3, Mode::Exclusive, SEEN).is_empty());
        assert!(l.release(1, Mode::Shared).is_empty(), "one reader remains");
        let t = l.release(2, Mode::Shared);
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].requester, 3);
        assert_eq!(
            t[0].old_owner, 0,
            "data still comes from the owner of record"
        );
        assert_eq!(l.owner(), 3);
    }

    #[test]
    fn mixed_queue_preserves_fifo_transfer_order() {
        // Queue [S2, E3, S4, E5] behind writer 1: each drain stops at the
        // first ungrantable request, so the grants replay in exactly
        // arrival order with the right owner of record each time.
        let mut l = HomeLock::new(0);
        l.acquire(1, Mode::Exclusive, SEEN);
        l.acquire(2, Mode::Shared, SEEN);
        l.acquire(3, Mode::Exclusive, SEEN);
        l.acquire(4, Mode::Shared, SEEN);
        l.acquire(5, Mode::Exclusive, SEEN);
        let mut order = Vec::new();
        for t in l.release(1, Mode::Exclusive) {
            order.push((t.requester, t.mode, t.old_owner));
        }
        for t in l.release(2, Mode::Shared) {
            order.push((t.requester, t.mode, t.old_owner));
        }
        for t in l.release(3, Mode::Exclusive) {
            order.push((t.requester, t.mode, t.old_owner));
        }
        for t in l.release(4, Mode::Shared) {
            order.push((t.requester, t.mode, t.old_owner));
        }
        assert_eq!(
            order,
            vec![
                (2, Mode::Shared, 1),
                (3, Mode::Exclusive, 1),
                (4, Mode::Shared, 3),
                (5, Mode::Exclusive, 3),
            ]
        );
    }

    #[test]
    fn seen_token_is_forwarded_verbatim_per_requester() {
        let mut l = HomeLock::new(0);
        let t = l.acquire(7, Mode::Exclusive, (42, 9));
        assert_eq!(t[0].seen, (42, 9));
        l.acquire(8, Mode::Exclusive, (1000, 2));
        let t = l.release(7, Mode::Exclusive);
        assert_eq!(t[0].seen, (1000, 2), "queued token survives the wait");
    }

    fn item(addr: u64, ts: u64) -> UpdateItem {
        UpdateItem {
            addr,
            data: vec![ts as u8; 4],
            ts,
        }
    }

    #[test]
    fn barrier_releases_when_all_arrive() {
        let mut b = BarrierSite::new(3);
        assert!(b
            .arrive(
                0,
                UpdateSet {
                    items: vec![item(0, 1)]
                }
            )
            .expect("clean arrival")
            .is_none());
        assert!(b
            .arrive(
                2,
                UpdateSet {
                    items: vec![item(8, 2)]
                }
            )
            .expect("clean arrival")
            .is_none());
        let rel = b
            .arrive(1, UpdateSet::new())
            .expect("clean arrival")
            .expect("last arrival releases");
        assert_eq!(rel.episode, 0);
        // Each processor receives the others' updates, not its own.
        assert_eq!(rel.per_proc[0].items.len(), 1);
        assert_eq!(rel.per_proc[0].items[0].addr, 8);
        assert_eq!(rel.per_proc[1].items.len(), 2);
        assert_eq!(rel.per_proc[2].items[0].addr, 0);
        // Ready for the next episode.
        assert_eq!(b.episode(), 1);
        assert!(b
            .arrive(0, UpdateSet::new())
            .expect("clean arrival")
            .is_none());
    }

    #[test]
    fn barrier_conflicting_writes_resolve_newest_and_skip_writers() {
        // Two processors wrote the same address: the merge keeps the
        // newer item, and neither writer receives it back (each already
        // has its own — possibly older — value by design; entry
        // consistency only promises consistency at the next acquire).
        let mut b = BarrierSite::new(3);
        b.arrive(
            0,
            UpdateSet {
                items: vec![item(16, 5)],
            },
        )
        .expect("clean arrival");
        b.arrive(
            1,
            UpdateSet {
                items: vec![item(16, 9)],
            },
        )
        .expect("clean arrival");
        let rel = b
            .arrive(2, UpdateSet::new())
            .expect("clean arrival")
            .expect("last arrival releases");
        assert!(rel.per_proc[0].items.is_empty());
        assert!(rel.per_proc[1].items.is_empty());
        assert_eq!(rel.per_proc[2].items.len(), 1);
        assert_eq!(rel.per_proc[2].items[0].ts, 9, "newest write wins");
    }

    #[test]
    fn double_arrival_is_an_error_not_a_panic() {
        let mut b = BarrierSite::new(2);
        b.arrive(0, UpdateSet::new())
            .expect("first arrival is clean");
        assert_eq!(
            b.arrive(0, UpdateSet::new()),
            Err(BarrierError::DoubleArrival {
                from: 0,
                episode: 0
            })
        );
        // The offender did not corrupt the episode: the missing processor
        // still completes it.
        let rel = b
            .arrive(1, UpdateSet::new())
            .expect("clean arrival")
            .expect("all arrived");
        assert_eq!(rel.episode, 0);
    }
}
