//! Lock/barrier ↔ data bindings.
//!
//! "The programmer provides the association between a lock or barrier and
//! the data that the lock or barrier protects" (paper §3). A binding is a
//! set of address ranges; `quicksort` rebinds its task locks to new ranges
//! for every task created, which is why bindings carry a version and travel
//! with lock grants.

use midway_mem::{split_by_region, AddrRange, Layout, PAGE_SHIFT, PAGE_SIZE};

/// The data bound to one synchronization object.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct Binding {
    ranges: Vec<AddrRange>,
    version: u64,
}

impl Binding {
    /// Creates a binding over `ranges` (normalized: sorted, merged).
    pub fn new(ranges: Vec<AddrRange>) -> Binding {
        Binding {
            ranges: normalize(ranges),
            version: 0,
        }
    }

    /// Reconstructs a binding from its ranges and version, for wire
    /// decoders. Normalization is idempotent, so a decoded binding is
    /// identical to the encoded one.
    pub fn from_parts(ranges: Vec<AddrRange>, version: u64) -> Binding {
        Binding {
            ranges: normalize(ranges),
            version,
        }
    }

    /// Replaces the bound ranges, bumping the binding version.
    ///
    /// Under VM-DSM a rebinding forces the next transfer to ship all bound
    /// data without diffing (paper §4: quicksort); under RT-DSM the
    /// dirtybits are simply scanned under the new ranges.
    pub fn rebind(&mut self, ranges: Vec<AddrRange>) {
        self.ranges = normalize(ranges);
        self.version += 1;
    }

    /// Installs a binding received with a lock grant.
    pub fn install(&mut self, other: Binding) {
        *self = other;
    }

    /// The normalized bound ranges.
    pub fn ranges(&self) -> &[AddrRange] {
        &self.ranges
    }

    /// The binding version (bumped on every rebind).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total bound bytes.
    pub fn data_bytes(&self) -> u64 {
        self.ranges.iter().map(|r| r.end - r.start).sum()
    }

    /// Bytes a binding occupies on the wire when shipped with a grant.
    pub fn wire_size(&self) -> u64 {
        16 * self.ranges.len() as u64 + 8
    }

    /// Whether `[addr, addr+len)` lies entirely within the bound ranges.
    pub fn covers(&self, addr: u64, len: usize) -> bool {
        let end = addr + len as u64;
        self.ranges.iter().any(|r| r.start <= addr && end <= r.end)
    }

    /// The cache lines covered per region: `(region, line range)` pairs,
    /// deduplicated and sorted.
    ///
    /// A line partially covered by a bound range is included whole: the
    /// cache line is the coherency unit.
    pub fn line_spans(&self, layout: &Layout) -> Vec<(usize, std::ops::Range<usize>)> {
        let mut spans: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        for range in &self.ranges {
            for piece in split_by_region(range.clone()) {
                let start = midway_mem::Addr(piece.start);
                let region = layout.region_of(start);
                let shift = region.line_shift;
                let first = start.region_offset() >> shift;
                let last = (midway_mem::Addr(piece.end - 1).region_offset()) >> shift;
                spans.push((region.id, first..last + 1));
            }
        }
        merge_spans(spans)
    }

    /// The pages covered per region: `(region, page range)` pairs,
    /// deduplicated and sorted.
    pub fn page_spans(&self, layout: &Layout) -> Vec<(usize, std::ops::Range<usize>)> {
        let mut spans: Vec<(usize, std::ops::Range<usize>)> = Vec::new();
        for range in &self.ranges {
            for piece in split_by_region(range.clone()) {
                let start = midway_mem::Addr(piece.start);
                let region = layout.region_of(start);
                let first = start.region_offset() >> PAGE_SHIFT;
                let last = midway_mem::Addr(piece.end - 1).region_offset() >> PAGE_SHIFT;
                spans.push((region.id, first..last + 1));
            }
        }
        merge_spans(spans)
    }

    /// The bound byte ranges that fall within one page, page-relative.
    pub fn ranges_in_page(&self, region: usize, page: usize) -> Vec<std::ops::Range<usize>> {
        let page_base = ((region as u64) << midway_mem::REGION_SHIFT) + (page << PAGE_SHIFT) as u64;
        let page_end = page_base + PAGE_SIZE as u64;
        let mut out = Vec::new();
        for r in &self.ranges {
            let lo = r.start.max(page_base);
            let hi = r.end.min(page_end);
            if lo < hi {
                out.push((lo - page_base) as usize..(hi - page_base) as usize);
            }
        }
        out
    }
}

fn normalize(mut ranges: Vec<AddrRange>) -> Vec<AddrRange> {
    ranges.retain(|r| r.start < r.end);
    ranges.sort_by_key(|r| r.start);
    let mut out: Vec<AddrRange> = Vec::with_capacity(ranges.len());
    for r in ranges {
        match out.last_mut() {
            Some(prev) if r.start <= prev.end => prev.end = prev.end.max(r.end),
            _ => out.push(r),
        }
    }
    out
}

fn merge_spans(
    mut spans: Vec<(usize, std::ops::Range<usize>)>,
) -> Vec<(usize, std::ops::Range<usize>)> {
    spans.sort_by_key(|(region, r)| (*region, r.start));
    let mut out: Vec<(usize, std::ops::Range<usize>)> = Vec::with_capacity(spans.len());
    for (region, r) in spans {
        match out.last_mut() {
            Some((prev_region, prev)) if *prev_region == region && r.start <= prev.end => {
                prev.end = prev.end.max(r.end);
            }
            _ => out.push((region, r)),
        }
    }
    out
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // one-range bindings are the point here
mod tests {
    use super::*;
    use midway_mem::{LayoutBuilder, MemClass};

    #[test]
    fn normalization_sorts_and_merges() {
        let b = Binding::new(vec![30..40, 0..10, 8..20, 50..50]);
        assert_eq!(b.ranges(), &[0..20, 30..40]);
        assert_eq!(b.data_bytes(), 30);
    }

    #[test]
    fn rebind_bumps_version() {
        let mut b = Binding::new(vec![0..8]);
        assert_eq!(b.version(), 0);
        b.rebind(vec![8..16]);
        assert_eq!(b.version(), 1);
        assert_eq!(b.ranges(), &[8..16]);
    }

    #[test]
    fn covers_checks_containment() {
        let b = Binding::new(vec![100..200]);
        assert!(b.covers(100, 100));
        assert!(b.covers(150, 8));
        assert!(!b.covers(196, 8));
        assert!(!b.covers(90, 8));
    }

    #[test]
    fn line_spans_cover_partial_lines_whole() {
        let mut lb = LayoutBuilder::new();
        let a = lb.alloc("x", 1024, MemClass::Shared, 3); // 8-byte lines
        let layout = lb.build();
        let base = a.addr.raw();
        // Bytes 4..20 touch lines 0, 1, 2.
        let b = Binding::new(vec![base + 4..base + 20]);
        let spans = b.line_spans(&layout);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].1, 0..3);
    }

    #[test]
    fn line_spans_dedup_shared_lines() {
        let mut lb = LayoutBuilder::new();
        let a = lb.alloc("x", 1024, MemClass::Shared, 3);
        let layout = lb.build();
        let base = a.addr.raw();
        // Two non-adjacent byte ranges meeting in line 1 (bytes 8..16).
        let b = Binding::new(vec![base..base + 10, base + 12..base + 24]);
        let spans = b.line_spans(&layout);
        assert_eq!(spans, vec![(a.addr.region_index(), 0..3)]);
    }

    #[test]
    fn page_spans_and_page_relative_ranges() {
        let mut lb = LayoutBuilder::new();
        let a = lb.alloc("x", 3 * PAGE_SIZE, MemClass::Shared, 12);
        let layout = lb.build();
        let base = a.addr.raw();
        let b = Binding::new(vec![base + 100..base + PAGE_SIZE as u64 + 200]);
        let spans = b.page_spans(&layout);
        assert_eq!(spans, vec![(a.addr.region_index(), 0..2)]);
        let region = a.addr.region_index();
        assert_eq!(b.ranges_in_page(region, 0), vec![100..PAGE_SIZE]);
        assert_eq!(b.ranges_in_page(region, 1), vec![0..200]);
        assert!(b.ranges_in_page(region, 2).is_empty());
    }

    #[test]
    fn empty_binding_has_no_spans() {
        let layout = LayoutBuilder::new().build();
        let b = Binding::default();
        assert!(b.line_spans(&layout).is_empty());
        assert!(b.page_spans(&layout).is_empty());
        assert_eq!(b.data_bytes(), 0);
    }
}
