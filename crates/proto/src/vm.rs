//! VM-DSM write collection (paper §3.4).
//!
//! A write-faulted page has a *twin*; collection diffs dirty pages bound to
//! the requested object against their twins, restricted to the bound
//! ranges. Updates are kept per *incarnation* of the lock; a requester
//! whose last-seen incarnation is too old — or whose binding is stale, or
//! for whom the concatenated updates would exceed the bound data size —
//! receives the full bound data instead.

use std::sync::Arc;

use midway_mem::diff::PageDiff;
use midway_mem::{Addr, Layout, LocalStore, PageTable, PAGE_SHIFT};

use crate::binding::Binding;
use crate::update::{Update, UpdateItem, UpdateSet};

/// Result of a VM collection pass over one binding.
#[derive(Debug)]
pub struct VmCollect {
    /// The update for the current incarnation (restricted to the binding).
    pub update: UpdateSet,
    /// Pages diffed (Table 2: "pages diffed").
    pub pages_diffed: u64,
    /// Run count of each full-page diff, for the cost model's
    /// fragmentation-sensitive charging.
    pub diff_runs: Vec<(usize, usize)>,
    /// Pages cleaned — twin freed and page write-protected (Table 2:
    /// "pages write protected").
    pub pages_cleaned: u64,
}

/// Result of applying a VM update set at the requester.
#[derive(Debug, Default)]
pub struct VmApply {
    /// Bytes written into the local cache.
    pub bytes_applied: u64,
    /// Bytes also patched into twins of locally dirty pages (Table 2:
    /// "data updated in twins").
    pub twin_bytes_updated: u64,
}

/// Diffs the dirty pages covered by `binding` and builds the update for
/// the current incarnation.
///
/// A page whose modifications all fall inside the binding is *cleaned*
/// afterwards (twin freed, write-protected): its data now lives in the
/// lock's update history, so the twin is no longer needed.
pub fn collect(
    store: &mut LocalStore,
    pages: &mut PageTable,
    layout: &Layout,
    binding: &Binding,
) -> VmCollect {
    let mut out = VmCollect {
        update: UpdateSet::new(),
        pages_diffed: 0,
        diff_runs: Vec::new(),
        pages_cleaned: 0,
    };
    // One diff buffer reused across every page of the pass — the hot loop
    // neither copies the page out of the store nor allocates per diff.
    let mut diff = PageDiff::default();
    for (region_id, page_range) in binding.page_spans(layout) {
        let desc = layout.region(region_id).expect("bound region exists");
        let used = desc.used;
        for page in pages.dirty_pages_in(region_id, page_range) {
            let offset = page << PAGE_SHIFT;
            let len = (1usize << PAGE_SHIFT).min(used - offset);
            let page_base = desc.base() + offset as u64;
            let current = store.bytes(page_base, len);
            let twin = pages.twin(region_id, page).expect("dirty page has twin");
            PageDiff::compute_into(&mut diff, current, twin);
            out.pages_diffed += 1;
            out.diff_runs.push((diff.run_count(), len / 4));
            // Intersect the diff runs with the bound ranges in place —
            // emitting `UpdateItem`s directly instead of materialising an
            // intermediate restricted `PageDiff` (which would copy every
            // run once into the restriction and once more into the item).
            let bound = binding.ranges_in_page(region_id, page);
            let first_item = out.update.items.len();
            let mut restricted_bytes = 0usize;
            let mut j = 0usize;
            for run in &diff.runs {
                let run_end = run.offset + run.data.len();
                while j < bound.len() && bound[j].end <= run.offset {
                    j += 1;
                }
                for range in &bound[j..] {
                    if range.start >= run_end {
                        break;
                    }
                    let lo = run.offset.max(range.start);
                    let hi = run_end.min(range.end);
                    if lo < hi {
                        restricted_bytes += hi - lo;
                        out.update.items.push(UpdateItem {
                            addr: page_base.raw() + lo as u64,
                            data: run.data[lo - run.offset..hi - run.offset].to_vec(),
                            ts: 0,
                        });
                    }
                }
            }
            if diff.changed_bytes() == restricted_bytes {
                pages.clean(region_id, page);
                out.pages_cleaned += 1;
            } else if restricted_bytes > 0 {
                // Some modified words belong to other synchronization
                // objects; fold the shipped part into the twin so it is not
                // shipped again, and leave the page dirty.
                if let Some(twin) = pages.twin_mut(region_id, page) {
                    for item in &out.update.items[first_item..] {
                        let start = (item.addr - page_base.raw()) as usize;
                        let end = (start + item.data.len()).min(twin.len());
                        if start < end {
                            twin[start..end].copy_from_slice(&item.data[..end - start]);
                        }
                    }
                }
            }
        }
    }
    out.update.items.sort_by_key(|i| i.addr);
    out
}

/// Reads the full bound data: the fallback when the incarnation history
/// cannot serve a requester, and the §3.5 "blast" strawman's payload.
pub fn snapshot(store: &mut LocalStore, binding: &Binding) -> UpdateSet {
    let mut set = UpdateSet::new();
    for range in binding.ranges() {
        for piece in midway_mem::split_by_region(range.clone()) {
            let len = (piece.end - piece.start) as usize;
            let data = store.bytes(Addr(piece.start), len).to_vec();
            set.items.push(UpdateItem {
                addr: piece.start,
                data,
                ts: 0,
            });
        }
    }
    set
}

/// Applies an incoming update set; modifications landing on a locally
/// dirty page are also applied to its twin, "so the update will not be
/// treated as a new modification by the local processor".
pub fn apply(store: &mut LocalStore, pages: &mut PageTable, set: &UpdateSet) -> VmApply {
    let mut out = VmApply::default();
    for item in &set.items {
        store.write_bytes(Addr(item.addr), &item.data);
        out.bytes_applied += item.data.len() as u64;
        // Patch the twin page by page (items may span page boundaries).
        let mut pos = 0usize;
        while pos < item.data.len() {
            let addr = Addr(item.addr + pos as u64);
            let region = addr.region_index();
            let page = addr.page_in_region();
            let in_page = (1usize << PAGE_SHIFT) - addr.page_offset();
            let chunk = in_page.min(item.data.len() - pos);
            if let Some(twin) = pages.twin_mut(region, page) {
                let start = addr.page_offset();
                let end = (start + chunk).min(twin.len());
                if start < end {
                    twin[start..end].copy_from_slice(&item.data[pos..pos + (end - start)]);
                    out.twin_bytes_updated += (end - start) as u64;
                }
            }
            pos += chunk;
        }
    }
    out
}

/// The per-lock incarnation history one processor knows (paper §3.4).
///
/// "The releasing processor has available the complete set of prior
/// updates, because it saves the updates it receives when acquiring each
/// lock" — but, like Midway, we do not save them all: the history is a
/// bounded contiguous suffix, and requesters who need more receive the
/// full bound data.
///
/// Entries are reference-counted: the same `Update` is simultaneously in
/// this history, in in-flight grant payloads, and (after a grant) in the
/// requester's history — `since`/`absorb` share the data instead of
/// deep-copying every item buffer at each hop.
#[derive(Clone, Debug)]
pub struct LockHistory {
    updates: std::collections::VecDeque<Arc<Update>>,
    cap: usize,
}

impl LockHistory {
    /// An empty history retaining at most `cap` incarnations.
    pub fn new(cap: usize) -> LockHistory {
        LockHistory {
            updates: std::collections::VecDeque::new(),
            cap: cap.max(1),
        }
    }

    /// Records the update of a new incarnation (must be increasing).
    pub fn push(&mut self, update: Arc<Update>) {
        if let Some(last) = self.updates.back() {
            assert!(
                update.incarnation > last.incarnation,
                "incarnations must increase"
            );
        }
        self.updates.push_back(update);
        while self.updates.len() > self.cap {
            self.updates.pop_front();
        }
    }

    /// Absorbs updates received with a grant (they extend this processor's
    /// known history). Only the reference counts move; the update data
    /// itself is shared with the payload they arrived in.
    pub fn absorb(&mut self, received: &[Arc<Update>]) {
        for u in received {
            let newer = self
                .updates
                .back()
                .is_none_or(|last| u.incarnation > last.incarnation);
            if newer {
                self.push(Arc::clone(u));
            }
        }
    }

    /// The updates a requester at `last_seen` needs: the contiguous chain
    /// `last_seen+1 ..= current` if retained, or — when the oldest retained
    /// entry is a full snapshot — everything from that snapshot onward (a
    /// snapshot subsumes all earlier incarnations). Returned by reference
    /// count: building a grant payload copies no item data.
    pub fn since(&self, last_seen: u64) -> Option<Vec<Arc<Update>>> {
        let newest = self.updates.back()?.incarnation;
        if last_seen >= newest {
            return Some(Vec::new());
        }
        let needed: Vec<Arc<Update>> = self
            .updates
            .iter()
            .filter(|u| u.incarnation > last_seen)
            .cloned()
            .collect();
        let expect = (newest - last_seen) as usize;
        if needed.len() == expect {
            return Some(needed);
        }
        if self.updates.front().is_some_and(|u| u.full) {
            return Some(self.updates.iter().cloned().collect());
        }
        None
    }

    /// The newest incarnation recorded, if any.
    pub fn newest(&self) -> Option<u64> {
        self.updates.back().map(|u| u.incarnation)
    }

    /// Clears the history (used on rebinding: old updates describe ranges
    /// that may no longer be bound).
    pub fn clear(&mut self) {
        self.updates.clear();
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // one-range bindings are the point here
mod tests {
    use super::*;
    use midway_mem::{LayoutBuilder, MemClass, PAGE_SIZE};
    use std::sync::Arc;

    struct Fixture {
        layout: Arc<Layout>,
        store: LocalStore,
        pages: PageTable,
        base: Addr,
        region: usize,
    }

    fn fixture(bytes: usize) -> Fixture {
        let mut b = LayoutBuilder::new();
        let a = b.alloc("x", bytes, MemClass::Shared, 12);
        let layout = b.build();
        Fixture {
            store: LocalStore::new(Arc::clone(&layout)),
            pages: PageTable::new(Arc::clone(&layout)),
            layout,
            base: a.addr,
            region: a.addr.region_index(),
        }
    }

    /// Simulates the app write path: fault if needed, then store.
    fn write_u64(f: &mut Fixture, addr: Addr, v: u64) {
        let page = addr.page_in_region();
        if !f.pages.is_writable(f.region, page) {
            let offset = page << PAGE_SHIFT;
            let len = PAGE_SIZE.min(f.layout.region(f.region).unwrap().used - offset);
            let snapshot = f
                .store
                .bytes(f.base.region_base() + offset as u64, len)
                .to_vec();
            f.pages.fault_in(f.region, page, &snapshot);
        }
        f.store.write_u64(addr, v);
    }

    #[test]
    fn collect_ships_diff_and_cleans_covered_pages() {
        let mut f = fixture(2 * PAGE_SIZE);
        let a = f.base + 8;
        write_u64(&mut f, a, u64::MAX - 42);
        let binding = Binding::new(vec![f.base.raw()..f.base.raw() + 2 * PAGE_SIZE as u64]);
        let c = collect(&mut f.store, &mut f.pages, &f.layout, &binding);
        assert_eq!(c.pages_diffed, 1);
        assert_eq!(c.pages_cleaned, 1);
        assert_eq!(c.update.len(), 1);
        assert_eq!(c.update.items[0].addr, f.base.raw() + 8);
        assert!(!f.pages.is_dirty(f.region, 0));
    }

    #[test]
    fn partially_bound_dirty_page_stays_dirty() {
        let mut f = fixture(PAGE_SIZE);
        let a = f.base + 8;
        write_u64(&mut f, a, u64::MAX - 1); // inside the binding
        let a = f.base + 512;
        write_u64(&mut f, a, u64::MAX - 2); // outside the binding
        let binding = Binding::new(vec![f.base.raw()..f.base.raw() + 256]);
        let c = collect(&mut f.store, &mut f.pages, &f.layout, &binding);
        assert_eq!(c.pages_cleaned, 0);
        assert!(f.pages.is_dirty(f.region, 0));
        assert_eq!(c.update.data_bytes(), 8);
        // The shipped part was folded into the twin: collecting again for
        // the same binding ships nothing new.
        let again = collect(&mut f.store, &mut f.pages, &f.layout, &binding);
        assert!(again.update.is_empty());
    }

    #[test]
    fn apply_patches_twins_of_dirty_pages() {
        let mut f = fixture(PAGE_SIZE);
        let a = f.base + 512;
        write_u64(&mut f, a, u64::MAX - 7); // page is now dirty with a twin
        let set = UpdateSet {
            items: vec![UpdateItem {
                addr: f.base.raw(),
                data: vec![9; 8],
                ts: 0,
            }],
        };
        let a = apply(&mut f.store, &mut f.pages, &set);
        assert_eq!(a.bytes_applied, 8);
        assert_eq!(a.twin_bytes_updated, 8);
        // The incoming update is not mistaken for a local modification.
        let binding = Binding::new(vec![f.base.raw()..f.base.raw() + PAGE_SIZE as u64]);
        let c = collect(&mut f.store, &mut f.pages, &f.layout, &binding);
        assert_eq!(c.update.data_bytes(), 8, "only the local write ships");
        assert_eq!(c.update.items[0].addr, f.base.raw() + 512);
    }

    #[test]
    fn snapshot_reads_all_bound_data() {
        let mut f = fixture(PAGE_SIZE);
        f.store.write_u64(f.base + 16, 3);
        let binding = Binding::new(vec![f.base.raw()..f.base.raw() + 64]);
        let s = snapshot(&mut f.store, &binding);
        assert_eq!(s.data_bytes(), 64);
        assert_eq!(s.items.len(), 1);
    }

    #[test]
    fn history_serves_contiguous_suffixes_only() {
        let upd = |inc: u64| {
            Arc::new(Update {
                incarnation: inc,
                set: UpdateSet::new(),
                full: false,
            })
        };
        let mut h = LockHistory::new(4);
        for inc in 1..=6 {
            h.push(upd(inc));
        }
        // Cap 4 keeps incarnations 3..=6.
        assert_eq!(h.newest(), Some(6));
        assert_eq!(h.since(4).unwrap().len(), 2);
        assert_eq!(h.since(6).unwrap().len(), 0);
        assert_eq!(h.since(9).unwrap().len(), 0);
        assert!(h.since(1).is_none(), "incarnation 2 was pruned");
    }

    #[test]
    fn history_absorbs_received_updates() {
        let upd = |inc: u64| {
            Arc::new(Update {
                incarnation: inc,
                set: UpdateSet::new(),
                full: false,
            })
        };
        let mut h = LockHistory::new(8);
        h.push(upd(3));
        h.absorb(&[upd(2), upd(4), upd(5)]);
        assert_eq!(h.newest(), Some(5));
        assert_eq!(h.since(2).unwrap().len(), 3);
    }
}
