//! The §3.5 "blast" strawman: no write detection at all.
//!
//! Entry consistency can be provided "by simply blasting all data
//! associated with a synchronization object during interprocessor
//! synchronization". There is no trapping and no collection scan — but all
//! bound data travels on every transfer, "unnecessarily when
//! synchronization objects guard large data objects being sparsely
//! written".

use midway_mem::{Addr, LocalStore};

use crate::binding::Binding;
use crate::update::UpdateSet;

/// Reads the full bound data (the entire payload of a blast transfer).
pub fn snapshot(store: &mut LocalStore, binding: &Binding) -> UpdateSet {
    crate::vm::snapshot(store, binding)
}

/// Applies a blast payload: plain writes, no bookkeeping.
pub fn apply(store: &mut LocalStore, set: &UpdateSet) -> u64 {
    let mut bytes = 0;
    for item in &set.items {
        store.write_bytes(Addr(item.addr), &item.data);
        bytes += item.data.len() as u64;
    }
    bytes
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // one-range bindings are the point here
mod tests {
    use super::*;
    use midway_mem::{LayoutBuilder, MemClass};
    use std::sync::Arc;

    #[test]
    fn blast_ships_everything_every_time() {
        let mut b = LayoutBuilder::new();
        let a = b.alloc("x", 1024, MemClass::Shared, 3);
        let layout = b.build();
        let mut p0 = LocalStore::new(Arc::clone(&layout));
        let mut p1 = LocalStore::new(layout);
        let binding = Binding::new(vec![a.addr.raw()..a.addr.raw() + 1024]);

        p0.write_u64(a.addr + 8, 5);
        let set = snapshot(&mut p0, &binding);
        assert_eq!(set.data_bytes(), 1024, "sparse write, full transfer");
        assert_eq!(apply(&mut p1, &set), 1024);
        assert_eq!(p1.read_u64(a.addr + 8), 5);
    }
}
