//! RT-DSM write collection (paper §3.2).
//!
//! The dirtybits are timestamps. Collection scans the dirtybits of the data
//! bound to the requested synchronization object: any value greater than
//! the requester's last-seen time (or still marked dirty — stamped lazily
//! during the scan) names a cache line that must be shipped. Application at
//! the requester writes the data and records the timestamp, so "updates are
//! never performed more than once at a processor".

use midway_mem::{Addr, DirtyBits, Layout, LocalStore};

use crate::binding::Binding;
use crate::update::{UpdateItem, UpdateSet};

/// Lazily materialized per-region dirtybit arrays for one processor.
pub struct DirtyMap {
    per_region: Vec<Option<DirtyBits>>,
}

impl DirtyMap {
    /// Creates an empty map over `layout`.
    pub fn new(layout: &Layout) -> DirtyMap {
        DirtyMap {
            per_region: (0..layout.region_slots()).map(|_| None).collect(),
        }
    }

    /// The dirtybit array of `region`, created on first touch.
    pub fn bits_mut(&mut self, layout: &Layout, region: usize) -> &mut DirtyBits {
        let lines = layout
            .region(region)
            .unwrap_or_else(|| panic!("no region {region}"))
            .lines();
        self.per_region[region].get_or_insert_with(|| DirtyBits::new(lines))
    }
}

/// Result of an RT collection scan.
#[derive(Debug, Default)]
pub struct RtScan {
    /// The lines to ship, with their timestamps.
    pub set: UpdateSet,
    /// Clean dirtybits read (Table 2: "clean dirtybits read").
    pub clean_reads: u64,
    /// Dirty dirtybits read (Table 2: "dirty dirtybits read").
    pub dirty_reads: u64,
}

/// Result of applying an RT update set.
#[derive(Debug, Default)]
pub struct RtApply {
    /// Dirtybits stamped with new timestamps (Table 2: "dirtybits updated").
    pub dirtybits_updated: u64,
    /// Bytes written into the local cache.
    pub bytes_applied: u64,
    /// Bytes skipped because the local copy was already as new — the
    /// exactly-once property in action.
    pub bytes_redundant: u64,
}

/// Scans the dirtybits of `binding`'s data on behalf of a requester whose
/// cache was last consistent at `last_seen`, lazily stamping fresh
/// modifications with `now` (the releaser's logical time).
pub fn collect(
    store: &mut LocalStore,
    dirty: &mut DirtyMap,
    layout: &Layout,
    binding: &Binding,
    last_seen: u64,
    now: u64,
) -> RtScan {
    let mut pool = midway_mem::BufPool::new();
    collect_pooled(store, dirty, layout, binding, last_seen, now, &mut pool)
}

/// [`collect`] drawing item buffers from `pool` instead of the allocator.
/// A detector that returns applied buffers to the same pool runs its
/// steady-state collection without malloc/free round trips.
#[allow(clippy::too_many_arguments)]
pub fn collect_pooled(
    store: &mut LocalStore,
    dirty: &mut DirtyMap,
    layout: &Layout,
    binding: &Binding,
    last_seen: u64,
    now: u64,
    pool: &mut midway_mem::BufPool,
) -> RtScan {
    let mut out = RtScan::default();
    // One scan buffer reused across regions, and the dirtybit array borrow
    // held across the line loop — no per-line region re-lookup, no per-line
    // copy of the shipped bytes.
    let mut scan = midway_mem::ScanOutcome::default();
    for (region_id, lines) in binding.line_spans(layout) {
        let desc = layout.region(region_id).expect("bound region exists");
        let shift = desc.line_shift;
        let used = desc.used;
        let base = desc.base();
        let bits = dirty.bits_mut(layout, region_id);
        bits.scan_into(&mut scan, lines, last_seen, now);
        out.clean_reads += scan.clean_reads;
        out.dirty_reads += scan.dirty_reads;
        for &line in &scan.lines {
            let offset = line << shift;
            let len = (1usize << shift).min(used - offset);
            let addr = base + offset as u64;
            let ts = bits.get(line);
            let data = store.bytes(addr, len);
            // Coalesce runs of adjacent lines with equal timestamps into
            // one item (Midway's update format packs runs; per-line items
            // would waste five bytes of header per word line).
            match out.set.items.last_mut() {
                Some(prev) if prev.ts == ts && prev.addr + prev.data.len() as u64 == addr.raw() => {
                    prev.data.extend_from_slice(data);
                }
                _ => {
                    let mut buf = pool.get_with_capacity(len);
                    buf.extend_from_slice(data);
                    out.set.items.push(UpdateItem {
                        addr: addr.raw(),
                        data: buf,
                        ts,
                    });
                }
            }
        }
    }
    out
}

/// Applies an incoming update set: newer data is written line by line and
/// the lines' dirtybits stamped; lines no newer than the local copy are
/// skipped.
pub fn apply(
    store: &mut LocalStore,
    dirty: &mut DirtyMap,
    layout: &Layout,
    set: &UpdateSet,
) -> RtApply {
    apply_with(store, dirty, layout, set, |_, _| {})
}

/// [`apply`] with a hook: `on_applied(addr, data)` runs for every chunk
/// actually written (skipped lines never reach it). Detectors that keep
/// secondary write-detection state — e.g. a hybrid backend patching page
/// twins so applied updates are not re-diffed as local modifications —
/// observe exactly the bytes that landed.
pub fn apply_with(
    store: &mut LocalStore,
    dirty: &mut DirtyMap,
    layout: &Layout,
    set: &UpdateSet,
    mut on_applied: impl FnMut(Addr, &[u8]),
) -> RtApply {
    let mut out = RtApply::default();
    for item in &set.items {
        // Items may span several cache lines (coalesced runs); exactly-once
        // filtering stays per line, the coherency unit.
        let mut pos = 0usize;
        while pos < item.data.len() {
            let addr = Addr(item.addr + pos as u64);
            let region_id = addr.region_index();
            let desc = layout.region(region_id).expect("update region exists");
            let line_size = desc.line_size();
            let line = addr.line_in_region(desc.line_shift);
            let in_line = line_size - (addr.region_offset() & (line_size - 1));
            let chunk = in_line.min(item.data.len() - pos);
            let bits = dirty.bits_mut(layout, region_id);
            let current = bits.get(line);
            // A locally-dirty line is never overwritten by a remote update
            // (an entry-consistency program never races here); otherwise
            // apply only strictly newer data — the exactly-once property.
            if current != midway_mem::DIRTY && item.ts > current {
                store.write_bytes(addr, &item.data[pos..pos + chunk]);
                dirty.bits_mut(layout, region_id).stamp(line, item.ts);
                on_applied(addr, &item.data[pos..pos + chunk]);
                out.dirtybits_updated += 1;
                out.bytes_applied += chunk as u64;
            } else {
                out.bytes_redundant += chunk as u64;
            }
            pos += chunk;
        }
    }
    out
}

/// Marks the lines under a write dirty (the template invocation lives in
/// `midway-mem`; this helper is the non-template path used by tests).
pub fn mark_write(dirty: &mut DirtyMap, layout: &Layout, addr: Addr, len: usize) {
    let desc = layout.region_of(addr);
    let shift = desc.line_shift;
    let first = addr.line_in_region(shift);
    let last = Addr(addr.raw() + len.max(1) as u64 - 1).line_in_region(shift);
    let bits = dirty.bits_mut(layout, desc.id);
    for line in first..=last {
        bits.mark(line);
    }
}

#[cfg(test)]
#[allow(clippy::single_range_in_vec_init)] // one-range bindings are the point here
mod tests {
    use super::*;
    use midway_mem::{LayoutBuilder, MemClass};
    use std::sync::Arc;

    struct Fixture {
        layout: Arc<Layout>,
        store: LocalStore,
        dirty: DirtyMap,
        base: Addr,
    }

    fn fixture(bytes: usize, line_shift: u32) -> Fixture {
        let mut b = LayoutBuilder::new();
        let a = b.alloc("x", bytes, MemClass::Shared, line_shift);
        let layout = b.build();
        Fixture {
            store: LocalStore::new(Arc::clone(&layout)),
            dirty: DirtyMap::new(&layout),
            layout,
            base: a.addr,
        }
    }

    #[test]
    fn collect_ships_only_modified_lines() {
        let mut f = fixture(64, 3);
        f.store.write_u64(f.base + 16, 42);
        mark_write(&mut f.dirty, &f.layout, f.base + 16, 8);
        let binding = Binding::new(vec![f.base.raw()..f.base.raw() + 64]);
        let scan = collect(&mut f.store, &mut f.dirty, &f.layout, &binding, 1, 50);
        assert_eq!(scan.set.len(), 1);
        assert_eq!(scan.set.items[0].addr, f.base.raw() + 16);
        assert_eq!(scan.set.items[0].ts, 50, "lazily stamped with `now`");
        assert_eq!(scan.dirty_reads, 1);
        assert_eq!(scan.clean_reads, 7);
    }

    #[test]
    fn collect_respects_last_seen() {
        let mut f = fixture(64, 3);
        f.store.write_u64(f.base, 1);
        mark_write(&mut f.dirty, &f.layout, f.base, 8);
        let binding = Binding::new(vec![f.base.raw()..f.base.raw() + 64]);
        // First transfer at time 10.
        let first = collect(&mut f.store, &mut f.dirty, &f.layout, &binding, 1, 10);
        assert_eq!(first.set.len(), 1);
        // A requester that has seen time 10 gets nothing.
        let second = collect(&mut f.store, &mut f.dirty, &f.layout, &binding, 10, 20);
        assert!(second.set.is_empty());
        assert_eq!(second.clean_reads, 8);
        // A requester that last saw time 5 still gets the line (from its
        // recorded stamp, not a rescan of the data).
        let third = collect(&mut f.store, &mut f.dirty, &f.layout, &binding, 5, 30);
        assert_eq!(third.set.len(), 1);
        assert_eq!(third.set.items[0].ts, 10);
    }

    #[test]
    fn apply_is_exactly_once() {
        let mut f = fixture(64, 3);
        let set = UpdateSet {
            items: vec![UpdateItem {
                addr: f.base.raw() + 8,
                data: vec![7; 8],
                ts: 12,
            }],
        };
        let first = apply(&mut f.store, &mut f.dirty, &f.layout, &set);
        assert_eq!(first.dirtybits_updated, 1);
        assert_eq!(first.bytes_applied, 8);
        assert_eq!(f.store.read_u64(f.base + 8), u64::from_le_bytes([7; 8]));
        // Re-applying the same update is a no-op.
        let second = apply(&mut f.store, &mut f.dirty, &f.layout, &set);
        assert_eq!(second.dirtybits_updated, 0);
        assert_eq!(second.bytes_redundant, 8);
    }

    #[test]
    fn apply_never_clobbers_local_dirty_lines() {
        let mut f = fixture(64, 3);
        f.store.write_u64(f.base, 99);
        mark_write(&mut f.dirty, &f.layout, f.base, 8);
        let set = UpdateSet {
            items: vec![UpdateItem {
                addr: f.base.raw(),
                data: vec![1; 8],
                ts: 1000,
            }],
        };
        apply(&mut f.store, &mut f.dirty, &f.layout, &set);
        assert_eq!(f.store.read_u64(f.base), 99);
    }

    #[test]
    fn round_trip_between_two_processors() {
        // P0 writes; collection ships to P1; P1's cache converges.
        let mut b = LayoutBuilder::new();
        let a = b.alloc("x", 128, MemClass::Shared, 3);
        let layout = b.build();
        let mut p0 = LocalStore::new(Arc::clone(&layout));
        let mut p1 = LocalStore::new(Arc::clone(&layout));
        let mut d0 = DirtyMap::new(&layout);
        let mut d1 = DirtyMap::new(&layout);
        let binding = Binding::new(vec![a.addr.raw()..a.addr.raw() + 128]);

        p0.write_f64(a.addr + 24, 2.5);
        mark_write(&mut d0, &layout, a.addr + 24, 8);
        let scan = collect(&mut p0, &mut d0, &layout, &binding, 1, 10);
        let applied = apply(&mut p1, &mut d1, &layout, &scan.set);
        assert_eq!(applied.bytes_applied, 8);
        assert_eq!(p1.read_f64(a.addr + 24), 2.5);
    }

    #[test]
    fn partial_tail_line_is_clipped_to_region() {
        let mut f = fixture(20, 3); // 2.5 lines; last line is 4 bytes
        f.store.write_u32(f.base + 16, 5);
        mark_write(&mut f.dirty, &f.layout, f.base + 16, 4);
        let binding = Binding::new(vec![f.base.raw()..f.base.raw() + 20]);
        let scan = collect(&mut f.store, &mut f.dirty, &f.layout, &binding, 1, 9);
        assert_eq!(scan.set.items[0].data.len(), 4);
    }

    #[test]
    fn pooled_collect_matches_unpooled_with_recycled_buffers() {
        // The same writes collected twice: fresh allocations vs a pool
        // pre-seeded with previously used (formerly dirty) buffers. The
        // shipped sets must be identical — recycled buffers carry no
        // stale bytes into a collection.
        let mut a = fixture(256, 3);
        let mut b = fixture(256, 3);
        for f in [&mut a, &mut b] {
            for off in [0u64, 24, 128, 248] {
                f.store.write_u64(f.base + off, off | 1);
                mark_write(&mut f.dirty, &f.layout, f.base + off, 8);
            }
        }
        let binding = Binding::new(vec![a.base.raw()..a.base.raw() + 256]);
        let plain = collect(&mut a.store, &mut a.dirty, &a.layout, &binding, 1, 50);
        let mut pool = midway_mem::BufPool::new();
        for _ in 0..4 {
            pool.put(vec![0xEE; 64]);
        }
        let pooled = collect_pooled(
            &mut b.store,
            &mut b.dirty,
            &b.layout,
            &binding,
            1,
            50,
            &mut pool,
        );
        assert_eq!(plain.set, pooled.set);
        assert_eq!(plain.dirty_reads, pooled.dirty_reads);
        assert_eq!(plain.clean_reads, pooled.clean_reads);
        assert!(pool.hits > 0, "the recycled buffers were actually drawn");
    }
}
