//! End-to-end fault tolerance: the reliable delivery channel must mask a
//! deterministically faulty network.
//!
//! Three layers of assurance, in increasing strictness:
//!
//! * every application **completes deterministically** under a chaos
//!   plan (drops + duplicates + reordering + delays) on every
//!   data-moving backend — same seed, same run, bit for bit;
//! * live runs under faults still **pass the application's own
//!   verifier** (sorted output, converged grid, correct factors);
//! * the lock-order-independent applications (sor, matrix, water)
//!   **converge to the exact fault-free final memory and counters**
//!   (the strict replay oracle); the task-queue applications
//!   (quicksort, cholesky) are checked with the lenient oracle, since
//!   entry consistency allows lock grants — and with them the last
//!   writer of contended words — to reorder under retransmission
//!   timing.

use midway_apps::{run_app, AppKind, Scale};
use midway_core::{BackendKind, FaultPlan, MidwayConfig};
use midway_replay::{record_app, verify_fault_determinism, verify_fault_replay, Trace};

/// A plan that exercises every fault kind at once.
fn chaos(seed: u64) -> FaultPlan {
    FaultPlan::chaos(seed, 10_000)
}

/// Records `kind` at 4 processors under `backend` and returns the trace
/// (already round-tripped through the byte format, as a replayer sees it).
fn record(kind: AppKind, backend: BackendKind) -> Trace {
    let cfg = MidwayConfig::new(4, backend);
    let (outcome, trace) = record_app(kind, cfg, Scale::Small);
    assert!(
        outcome.verified,
        "{} failed verification under {}",
        kind.label(),
        backend.label()
    );
    Trace::decode(&trace.encode()).expect("trace round-trip")
}

/// sor under every data backend: strict convergence (final memory and
/// counters identical to the fault-free run) at 1% loss.
#[test]
fn sor_converges_strictly_on_every_backend() {
    for backend in BackendKind::DATA {
        let trace = record(AppKind::Sor, backend);
        let check = verify_fault_replay(&trace, FaultPlan::lossy(7, 10_000))
            .unwrap_or_else(|e| panic!("{}: {e}", backend.label()));
        assert!(
            check.slowdown() >= 1.0,
            "reliability cannot make the run faster"
        );
    }
}

/// The lock-order-independent applications survive a chaos plan with
/// bit-for-bit final-state convergence under RT.
#[test]
fn order_independent_apps_converge_under_chaos() {
    for kind in [AppKind::Sor, AppKind::Matmul, AppKind::Water] {
        let trace = record(kind, BackendKind::Rt);
        for seed in [1, 7, 42] {
            verify_fault_replay(&trace, chaos(seed))
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", kind.label()));
        }
    }
}

/// The task-queue applications complete deterministically under chaos;
/// final state legitimately depends on lock-grant order, so only the
/// lenient oracle applies at the replay level.
#[test]
fn task_queue_apps_complete_deterministically_under_chaos() {
    for kind in [AppKind::Quicksort, AppKind::Cholesky] {
        let trace = record(kind, BackendKind::Rt);
        for seed in [1, 7] {
            verify_fault_determinism(&trace, chaos(seed))
                .unwrap_or_else(|e| panic!("{} seed {seed}: {e}", kind.label()));
        }
    }
}

/// Live runs (the application recomputing, not replaying recorded bytes)
/// still verify their own output under faults: the sorted array is
/// sorted, the factorization checks out — whatever the lock order.
#[test]
fn live_runs_verify_their_output_under_faults() {
    for kind in AppKind::all() {
        let cfg = MidwayConfig::new(4, BackendKind::Rt).faults(chaos(11));
        let out = run_app(kind, cfg, Scale::Small);
        assert!(
            out.verified,
            "{} failed its own verification under faults",
            kind.label()
        );
    }
}

/// A zero-rate but *enabled* plan turns on the reliable channel without
/// injecting anything: the run must converge to the raw fault-free state
/// on every backend, and no faults may be counted.
#[test]
fn enabled_channel_with_zero_rates_converges() {
    for backend in BackendKind::DATA {
        let trace = record(AppKind::Sor, backend);
        let check = verify_fault_replay(&trace, FaultPlan::seeded(3))
            .unwrap_or_else(|e| panic!("{}: {e}", backend.label()));
        assert_eq!(check.faults_injected, 0, "zero rates must inject nothing");
    }
}

/// Heavy loss (10%) still completes — retransmission with backoff always
/// gets every frame through eventually, with no deadlock and no protocol
/// corruption.
#[test]
fn heavy_loss_completes_without_deadlock() {
    let trace = record(AppKind::Sor, BackendKind::Rt);
    let check = verify_fault_replay(&trace, FaultPlan::lossy(5, 100_000))
        .expect("10% loss must still converge");
    assert!(
        check.link.retransmits > 0,
        "10% loss without a single retransmission is not credible"
    );
}
