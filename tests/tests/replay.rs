//! Cross-backend trace replay equivalence: record a live application run,
//! round-trip the trace through the binary format, replay it without the
//! application, and require bit-for-bit agreement on every Table 2
//! counter, the finish time and the message count.
//!
//! This is the end-to-end form of the determinism argument: because the
//! simulator delivers events in a canonical order, a processor's
//! recorded shared-memory operation stream fully determines the run.

use midway_apps::{AppKind, Scale};
use midway_core::{BackendKind, MidwayConfig};
use midway_replay::{record_app, replay, verify_replay, Trace};

/// Records `kind` under `backend`, round-trips the trace through the byte
/// format, and checks the replay oracle.
fn record_and_verify(kind: AppKind, backend: BackendKind, procs: usize) {
    let cfg = MidwayConfig::new(procs, backend);
    let (outcome, trace) = record_app(kind, cfg, Scale::Small);
    assert!(
        outcome.verified,
        "{} live run failed verification under {}",
        kind.label(),
        backend.label()
    );

    // The trace that reaches a replayer has been through the file format.
    let decoded = Trace::decode(&trace.encode()).expect("round-trip");
    assert_eq!(decoded, trace, "encode/decode must be lossless");

    let run = verify_replay(&decoded).unwrap_or_else(|divergence| {
        panic!(
            "{} replay diverged under {}: {divergence}",
            kind.label(),
            backend.label()
        )
    });

    // Spot-check the oracle compared something real.
    assert_eq!(run.finish_time.cycles(), outcome.finish_time.cycles());
    assert_eq!(run.counters, outcome.counters);
    assert_eq!(run.messages, outcome.messages);
    assert!(
        run.finish_time.cycles() > 0,
        "a replayed run still charges time"
    );
}

#[test]
fn sor_replays_bit_for_bit_on_rt() {
    record_and_verify(AppKind::Sor, BackendKind::Rt, 4);
}

#[test]
fn sor_replays_bit_for_bit_on_vm() {
    record_and_verify(AppKind::Sor, BackendKind::Vm, 4);
}

#[test]
fn matmul_replays_bit_for_bit_on_rt() {
    record_and_verify(AppKind::Matmul, BackendKind::Rt, 4);
}

#[test]
fn matmul_replays_bit_for_bit_on_vm() {
    record_and_verify(AppKind::Matmul, BackendKind::Vm, 4);
}

#[test]
fn quicksort_replays_bit_for_bit_on_both_backends() {
    record_and_verify(AppKind::Quicksort, BackendKind::Rt, 4);
    record_and_verify(AppKind::Quicksort, BackendKind::Vm, 4);
}

#[test]
fn sor_and_quicksort_replay_bit_for_bit_on_hybrid() {
    record_and_verify(AppKind::Sor, BackendKind::Hybrid, 4);
    record_and_verify(AppKind::Quicksort, BackendKind::Hybrid, 4);
}

/// A trace recorded under RT-DSM drives every other backend: the stream
/// is backend-independent (it records what the application did, not what
/// the protocol did), and cross-backend replays must agree with a live
/// run of the same application under the target backend.
#[test]
fn rt_trace_replayed_on_other_backends_matches_live_runs() {
    let (_, trace) = record_app(
        AppKind::Sor,
        MidwayConfig::new(4, BackendKind::Rt),
        Scale::Small,
    );
    for backend in [
        BackendKind::Vm,
        BackendKind::Blast,
        BackendKind::TwinAll,
        BackendKind::Hybrid,
    ] {
        let cfg = MidwayConfig::new(4, backend);
        let replayed = replay(&trace, cfg).expect("replay");
        let (live, _) = record_app(AppKind::Sor, cfg, Scale::Small);
        assert_eq!(
            replayed.counters,
            live.counters,
            "replayed-from-RT-trace counters diverge from live run under {}",
            backend.label()
        );
        assert_eq!(
            replayed.finish_time.cycles(),
            live.finish_time.cycles(),
            "replayed-from-RT-trace finish time diverges under {}",
            backend.label()
        );
    }
}

/// Replaying a trace with recording on reproduces the identical trace:
/// the recorder and replayer are exact inverses.
#[test]
fn replaying_with_recording_reproduces_the_trace() {
    let (_, trace) = record_app(
        AppKind::Sor,
        MidwayConfig::new(2, BackendKind::Rt),
        Scale::Small,
    );
    let cfg = trace.recorded_cfg().record(true);
    let rerun = replay(&trace, cfg).expect("replay");
    let retrace = Trace::from_run(
        &trace.meta.app,
        &trace.meta.scale,
        trace.meta.verified,
        &rerun,
    );
    assert_eq!(retrace.ops, trace.ops, "re-recorded op streams differ");
    assert_eq!(retrace.blueprint, trace.blueprint);
    assert_eq!(retrace.encode(), trace.encode(), "byte-identical files");
}
