//! Trace-format backward compatibility: every version the decoder ever
//! shipped must still decode, and still replay bit for bit.
//!
//! Old-version files are *synthesized* with `encode_version` rather than
//! kept as binary fixtures: the version-gated encoder writes exactly the
//! byte layout the old encoder wrote (the layout is append-only — each
//! version adds sections, never reshapes earlier ones), so encoding a
//! modern trace "at version 3" produces the same bytes a version-3
//! recorder would have. Fields a version lacked must decode to the
//! defaults those runs actually used: fault-free before v3, modulo homes
//! and flat barriers before v4, no crashes and no checkpointing before
//! v5.

use midway_apps::{AppKind, Scale};
use midway_core::{BackendKind, BarrierShape, HomeMap, MidwayConfig};
use midway_replay::{
    encode_version, record_app, verify_replay, Trace, TraceError, MIN_VERSION, VERSION,
};

/// A recorded run expressible at every format version: fault-free,
/// modulo homes, flat barriers, no crash plan.
fn vanilla_trace() -> Trace {
    let cfg = MidwayConfig::new(4, BackendKind::Rt);
    let (outcome, trace) = record_app(AppKind::Sor, cfg, Scale::Small);
    assert!(outcome.verified);
    trace
}

/// Every supported version of the same run decodes, agrees on the parts
/// that version could express, defaults the rest, and replays bit for
/// bit against the recorded baseline.
#[test]
fn all_versions_decode_and_replay_bit_for_bit() {
    let trace = vanilla_trace();
    for version in MIN_VERSION..=VERSION {
        let bytes = encode_version(&trace, version);
        let decoded =
            Trace::decode(&bytes).unwrap_or_else(|e| panic!("version {version} must decode: {e}"));

        // What every version carries.
        assert_eq!(decoded.meta.app, trace.meta.app, "v{version}");
        assert_eq!(decoded.ops, trace.ops, "v{version}");
        assert_eq!(decoded.blueprint, trace.blueprint, "v{version}");
        assert_eq!(decoded.meta.counters, trace.meta.counters, "v{version}");
        assert_eq!(
            decoded.meta.finish_cycles, trace.meta.finish_cycles,
            "v{version}"
        );

        // What old versions must default.
        assert!(!decoded.meta.cfg.faults.enabled, "v{version}: fault-free");
        assert_eq!(decoded.meta.cfg.home_map, HomeMap::Modulo, "v{version}");
        assert_eq!(decoded.meta.cfg.barrier, BarrierShape::Flat, "v{version}");
        assert!(
            !decoded.meta.cfg.faults.has_crashes(),
            "v{version}: crash plans did not exist before v5"
        );
        assert_eq!(
            decoded.meta.cfg.checkpoint_every, 0,
            "v{version}: checkpointing did not exist before v5"
        );
        assert_eq!(
            decoded.meta.cfg.effective_checkpoint_every(),
            None,
            "v{version}: recovery machinery must stay inert"
        );

        // The acid test: the old-format file still replays bit for bit.
        verify_replay(&decoded)
            .unwrap_or_else(|e| panic!("version {version} must replay bit for bit: {e}"));
    }
}

/// v5's additions round-trip: the crash plan and checkpoint interval
/// survive encode/decode, and pre-v5 encodings of the same run simply
/// drop them (decoding as the crash-free configuration).
#[test]
fn v5_crash_fields_round_trip_and_downgrade_cleanly() {
    let cfg = MidwayConfig::new(4, BackendKind::Rt)
        .crash(1, 300_000, 60_000)
        .crash(3, 900_000, 60_000)
        .checkpoint_every(2);
    let (outcome, trace) = record_app(AppKind::Sor, cfg, Scale::Small);
    assert!(outcome.verified);

    let v5 = Trace::decode(&encode_version(&trace, 5)).expect("v5 decodes");
    assert_eq!(v5.meta.cfg.faults.crashes(), cfg.faults.crashes());
    assert_eq!(v5.meta.cfg.checkpoint_every, 2);
    assert_eq!(v5.meta.counters, trace.meta.counters);

    let v4 = Trace::decode(&encode_version(&trace, 4)).expect("v4 decodes");
    assert!(!v4.meta.cfg.faults.has_crashes());
    assert_eq!(v4.meta.cfg.checkpoint_every, 0);
    // The crash/recovery counters are a v5 section; a v4 file of a
    // crashed run zeroes them but keeps every Table 2 field.
    for (v4c, origc) in v4.meta.counters.iter().zip(&trace.meta.counters) {
        assert_eq!(v4c, &origc.sans_recovery());
    }
}

/// Unknown future versions and corrupt v5 crash sections are rejected,
/// not misread.
#[test]
fn bad_versions_and_corrupt_crash_plans_are_rejected() {
    let trace = vanilla_trace();

    let bytes = encode_version(&trace, VERSION);
    // Version byte sits right after the 4-byte magic; VERSION < 0x80 so
    // it is a single-byte varint we can bump in place.
    let mut future = bytes.clone();
    future[4] = (VERSION + 1) as u8;
    let end = future.len() - 8;
    let sum = fnv_fixup(&future[..end]);
    future[end..].copy_from_slice(&sum.to_le_bytes());
    assert_eq!(
        Trace::decode(&future),
        Err(TraceError::BadVersion(VERSION + 1))
    );

    // Flip a byte without fixing the checksum: rejected as corrupt.
    let mut corrupt = bytes;
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0xff;
    assert_eq!(Trace::decode(&corrupt), Err(TraceError::BadChecksum));
}

/// FNV-1a 64, duplicated here so the test can re-seal a deliberately
/// altered header.
fn fnv_fixup(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}
