//! Scale-out configuration tests: combining-tree barriers and sharded
//! sync homes must be invisible to application semantics — same results,
//! same final memory — and bit-for-bit deterministic run to run.

use midway_core::{BackendKind, Midway, MidwayConfig, MidwayRun, Proc, SystemBuilder};

const DATA_BACKENDS: [BackendKind; 5] = [
    BackendKind::Rt,
    BackendKind::Vm,
    BackendKind::Blast,
    BackendKind::TwinAll,
    BackendKind::Hybrid,
];

/// A barrier-phased stencil over a partitioned array: each processor owns
/// a chunk, writes a function of the iteration into it, and reads its
/// neighbours' chunks after each barrier. Stresses exactly the
/// merged-update fan-in/fan-out the combining tree reshapes.
fn run_stencil(cfg: MidwayConfig, chunk: usize, iters: u64) -> MidwayRun<u64> {
    let procs = cfg.procs;
    let mut b = SystemBuilder::new();
    let data = b.shared_array::<u64>("data", procs * chunk, 1);
    let parts = (0..procs)
        .map(|p| vec![data.range(p * chunk..(p + 1) * chunk)])
        .collect();
    let bar = b.barrier_partitioned(vec![data.full_range()], parts);
    let spec = b.build();
    Midway::run(cfg, &spec, |p: &mut Proc| {
        let me = p.id();
        let mut acc = 0u64;
        for it in 1..=iters {
            for i in 0..chunk {
                p.write(&data, me * chunk + i, (me as u64 + 1) * it + i as u64);
            }
            p.barrier(bar);
            let left = (me + procs - 1) % procs;
            let right = (me + 1) % procs;
            acc = acc
                .wrapping_add(p.read(&data, left * chunk))
                .wrapping_add(p.read(&data, right * chunk + chunk - 1));
            p.barrier(bar);
        }
        acc
    })
    .expect("stencil run completes")
}

/// Tree barriers deliver exactly the updates flat barriers deliver: the
/// application results and the final memory images agree on every data
/// backend, at processor counts that exercise ragged trees (odd, prime,
/// larger than arity squared).
#[test]
fn tree_barriers_match_flat_results_on_all_backends() {
    for backend in DATA_BACKENDS {
        for procs in [3, 7, 13] {
            let chunk = 4;
            let flat = run_stencil(MidwayConfig::new(procs, backend), chunk, 3);
            for arity in [2, 4] {
                let tree = run_stencil(
                    MidwayConfig::new(procs, backend).tree_barriers(arity),
                    chunk,
                    3,
                );
                assert_eq!(
                    tree.results, flat.results,
                    "{backend:?} P={procs} arity={arity}: results diverge"
                );
                assert_eq!(
                    tree.store_digests, flat.store_digests,
                    "{backend:?} P={procs} arity={arity}: final memory diverges"
                );
            }
        }
    }
}

/// Tree barriers (with sharded homes, the scale-out bundle) are
/// bit-for-bit deterministic: re-running the same configuration
/// reproduces the finish time, message count, every counter, and every
/// memory digest — on all six backends (the standalone `None` backend is
/// single-processor by definition, where the tree is a root and nothing
/// else).
#[test]
fn tree_barriers_are_bit_for_bit_deterministic() {
    fn fingerprint(run: &MidwayRun<u64>) -> (u64, u64, Vec<midway_core::Counters>, Vec<u64>) {
        (
            run.finish_time.cycles(),
            run.messages,
            run.counters.clone(),
            run.store_digests.clone(),
        )
    }
    for backend in DATA_BACKENDS {
        let cfg = MidwayConfig::new(9, backend).scale_out(2, 42);
        let first = run_stencil(cfg, 4, 3);
        for round in 0..2 {
            let again = run_stencil(cfg, 4, 3);
            assert_eq!(
                fingerprint(&again),
                fingerprint(&first),
                "{backend:?} round {round}: tree run is nondeterministic"
            );
        }
    }
    // The uniprocessor backend: a one-node tree must run and repeat.
    let cfg = MidwayConfig::new(1, BackendKind::None).tree_barriers(2);
    let first = run_stencil(cfg, 4, 3);
    let again = run_stencil(cfg, 4, 3);
    assert_eq!(fingerprint(&again), fingerprint(&first));
}

/// Sharded sync homes relocate coordination state but change no
/// semantics: a set of lock-protected counters sums to the same totals
/// under modulo and sharded placement, for several seeds, and every
/// processor observes the final values through a closing acquire pass.
#[test]
fn sharded_homes_match_modulo_semantics() {
    let slots = 8usize;
    let rounds = 10u64;
    let run_counters = |cfg: MidwayConfig| -> MidwayRun<Vec<u64>> {
        let mut b = SystemBuilder::new();
        let counter = b.shared_array::<u64>("counter", slots, 1);
        let locks: Vec<_> = (0..slots)
            .map(|i| b.lock(vec![counter.range(i..i + 1)]))
            .collect();
        let sync = b.barrier(vec![]);
        let spec = b.build();
        Midway::run(cfg, &spec, move |p: &mut Proc| {
            for r in 0..rounds {
                let slot = (p.id() + r as usize) % slots;
                p.acquire(locks[slot]);
                let v = p.read(&counter, slot);
                p.write(&counter, slot, v + 1);
                p.release(locks[slot]);
            }
            // All increments land before anyone reads final values.
            p.barrier(sync);
            // Closing read pass: acquiring each lock makes its slot
            // consistent here, so every processor returns the final image.
            (0..slots)
                .map(|slot| {
                    p.acquire(locks[slot]);
                    let v = p.read(&counter, slot);
                    p.release(locks[slot]);
                    v
                })
                .collect()
        })
        .expect("counter run completes")
    };
    for procs in [4, 7] {
        let modulo = run_counters(MidwayConfig::new(procs, BackendKind::Rt));
        // Slot s ends at the number of (processor, round) pairs that hashed
        // to it — interleaving-independent, so every configuration and
        // every processor must report exactly this image.
        let mut expected = vec![0u64; slots];
        for p in 0..procs {
            for r in 0..rounds as usize {
                expected[(p + r) % slots] += 1;
            }
        }
        for totals in &modulo.results {
            assert_eq!(totals, &expected, "P={procs}: wrong final counts");
        }
        for seed in [1u64, 99] {
            let sharded = run_counters(
                MidwayConfig::new(procs, BackendKind::Rt)
                    .home_map(midway_core::HomeMap::Sharded { seed }),
            );
            assert_eq!(
                sharded.results, modulo.results,
                "P={procs} seed={seed}: sharded homes changed semantics"
            );
        }
    }
}
