//! Randomized consistency tests: random entry-consistency programs
//! must preserve counting invariants on every backend. Driven by the
//! internal [`SplitMix64`] generator so the workspace tests offline;
//! every case derives from a fixed seed and is exactly reproducible.

use std::sync::Arc;

use midway_core::{
    BackendKind, Midway, MidwayConfig, NetModel, Proc, SplitMix64, SystemBuilder, SystemSpec,
};

const BACKENDS: [BackendKind; 5] = [
    BackendKind::Rt,
    BackendKind::Vm,
    BackendKind::Blast,
    BackendKind::TwinAll,
    BackendKind::Hybrid,
];

/// A randomly generated lock-counter program: `plan[p][r] = (lock, slot,
/// delta)` — processor `p`'s r-th action increments `slot` of `lock`'s
/// region by `delta`.
#[derive(Clone, Debug)]
struct Plan {
    procs: usize,
    locks: usize,
    slots_per_lock: usize,
    actions: Vec<Vec<(usize, usize, u64)>>,
}

fn random_plan(rng: &mut SplitMix64) -> Plan {
    let procs = 2 + rng.next_below(3) as usize;
    let locks = 1 + rng.next_below(3) as usize;
    let slots_per_lock = 1 + rng.next_below(3) as usize;
    let rounds = 1 + rng.next_below(8) as usize;
    let actions = (0..procs)
        .map(|_| {
            (0..rounds)
                .map(|_| {
                    (
                        rng.next_below(locks as u64) as usize,
                        rng.next_below(slots_per_lock as u64) as usize,
                        1 + rng.next_below(99),
                    )
                })
                .collect()
        })
        .collect();
    Plan {
        procs,
        locks,
        slots_per_lock,
        actions,
    }
}

fn build_spec(
    plan: &Plan,
) -> (
    Arc<SystemSpec>,
    Vec<midway_core::LockId>,
    midway_core::SharedArray<u64>,
) {
    let mut b = SystemBuilder::new();
    let data = b.shared_array::<u64>("data", plan.locks * plan.slots_per_lock, 1);
    let locks: Vec<_> = (0..plan.locks)
        .map(|l| {
            b.lock(vec![
                data.range(l * plan.slots_per_lock..(l + 1) * plan.slots_per_lock)
            ])
        })
        .collect();
    (b.build(), locks, data)
}

fn run_plan(plan: &Plan, backend: BackendKind) -> Vec<u64> {
    let (spec, locks, data) = build_spec(plan);
    let plan = plan.clone();
    let slots = plan.slots_per_lock;
    let run = Midway::run(
        MidwayConfig::new(plan.procs, backend).net(NetModel::atm_cluster()),
        &spec,
        move |p: &mut Proc| {
            for &(lock, slot, delta) in &plan.actions[p.id()] {
                p.acquire(locks[lock]);
                let idx = lock * slots + slot;
                let v = p.read(&data, idx);
                p.write(&data, idx, v + delta);
                p.release(locks[lock]);
            }
            // Final global read under every lock.
            let mut finals = Vec::new();
            for (l, lk) in locks.iter().enumerate() {
                p.acquire_shared(*lk);
                for s in 0..slots {
                    finals.push(p.read(&data, l * slots + s));
                }
                p.release_shared(*lk);
            }
            finals
        },
    )
    .expect("simulation failed");
    // The last reader on each slot has seen every increment; take the max
    // per slot over all processors' final reads.
    let n = plan.locks * plan.slots_per_lock;
    (0..n)
        .map(|i| run.results.iter().map(|r| r[i]).max().unwrap())
        .collect()
}

/// No increment is ever lost on any backend: the final value of every
/// slot equals the sum of the deltas applied to it.
#[test]
fn no_lost_updates_on_any_backend() {
    let mut rng = SplitMix64::new(0xc0_0001);
    for case in 0..24 {
        let plan = random_plan(&mut rng);
        let mut expect = vec![0u64; plan.locks * plan.slots_per_lock];
        for proc_actions in &plan.actions {
            for &(lock, slot, delta) in proc_actions {
                expect[lock * plan.slots_per_lock + slot] += delta;
            }
        }
        for backend in BACKENDS {
            let got = run_plan(&plan, backend);
            assert_eq!(got, expect, "{backend:?} case {case}");
        }
    }
}

/// The simulation is a pure function of the program: every counter and
/// the finish time are identical across repeated runs.
#[test]
fn runs_are_bit_for_bit_deterministic() {
    let mut rng = SplitMix64::new(0xc0_0002);
    for case in 0..24 {
        let plan = random_plan(&mut rng);
        let fingerprint = |backend| {
            let (spec, locks, data) = build_spec(&plan);
            let plan = plan.clone();
            let slots = plan.slots_per_lock;
            let run = Midway::run(
                MidwayConfig::new(plan.procs, backend),
                &spec,
                move |p: &mut Proc| {
                    for &(lock, slot, delta) in &plan.actions[p.id()] {
                        p.acquire(locks[lock]);
                        let idx = lock * slots + slot;
                        let v = p.read(&data, idx);
                        p.write(&data, idx, v + delta);
                        p.release(locks[lock]);
                    }
                },
            )
            .expect("simulation failed");
            (
                run.finish_time,
                run.messages,
                run.counters
                    .iter()
                    .map(|c| (c.dirtybits_set, c.write_faults, c.data_bytes_sent))
                    .collect::<Vec<_>>(),
            )
        };
        for backend in [BackendKind::Rt, BackendKind::Vm] {
            let a = fingerprint(backend);
            let b = fingerprint(backend);
            assert_eq!(a, b, "{backend:?} diverged between runs (case {case})");
        }
    }
}

/// Barrier-partitioned writes propagate exactly: after the barrier
/// every processor sees every partition's latest values.
#[test]
fn barriers_propagate_partitioned_writes() {
    let mut rng = SplitMix64::new(0xc0_0003);
    for case in 0..16 {
        let procs = 2 + rng.next_below(3) as usize;
        let per_proc = 1 + rng.next_below(6) as usize;
        let rounds = 1 + rng.next_below(4) as usize;
        let seed = rng.next_u64();
        for backend in BACKENDS {
            let n = procs * per_proc;
            let mut b = SystemBuilder::new();
            let data = b.shared_array::<u64>("data", n, 1);
            let partitions: Vec<_> = (0..procs)
                .map(|q| vec![data.range(q * per_proc..(q + 1) * per_proc)])
                .collect();
            let bar = b.barrier_partitioned(vec![data.full_range()], partitions);
            let spec = b.build();
            let run = Midway::run(MidwayConfig::new(procs, backend), &spec, |p: &mut Proc| {
                let me = p.id();
                let mut rng = SplitMix64::new(seed ^ me as u64);
                for round in 1..=rounds as u64 {
                    for i in me * per_proc..(me + 1) * per_proc {
                        p.write(&data, i, round * 1000 + i as u64 + rng.next_below(7));
                    }
                    p.barrier(bar);
                    // Everyone reads a full snapshot after each round.
                    let snap: Vec<u64> = (0..n).map(|i| p.read(&data, i)).collect();
                    p.barrier(bar);
                    let _ = snap;
                }
                (0..n).map(|i| p.read(&data, i)).collect::<Vec<u64>>()
            })
            .expect("simulation failed");
            let first = &run.results[0];
            for (pid, got) in run.results.iter().enumerate() {
                assert_eq!(got, first, "{backend:?}: proc {pid} diverged (case {case})");
            }
        }
    }
}
