//! End-to-end tests of the real transport: the same protocol engine that
//! runs on the virtual-time simulator, driven over actual loopback
//! sockets by OS threads, with the simulator as the correctness oracle.
//!
//! The oracle argument: a run on real sockets records its per-processor
//! shared-memory operation streams; replaying those streams through the
//! deterministic simulator independently re-executes the protocol, and
//! for lock-order-independent workloads the two executions — kernel
//! scheduler vs. virtual time, sockets vs. simulated delivery — must
//! agree on every byte of final shared memory.

use std::time::Duration;

use midway_apps::{run_app_real, sor, AppKind, Scale};
use midway_core::{BackendKind, FaultPlan, MidwayConfig, RealConfig};
use midway_replay::{verify_real_trace, Trace};

const PROCS: usize = 4;

/// A watchdog long enough for debug-build CI machines, short enough that
/// a genuine hang fails the suite rather than timing it out.
fn tcp() -> RealConfig {
    RealConfig::tcp().watchdog(Some(Duration::from_secs(60)))
}

/// Every application completes and self-verifies on the real transport,
/// under every data-moving backend.
#[test]
fn every_app_completes_on_tcp_under_every_backend() {
    for kind in AppKind::all() {
        for backend in BackendKind::DATA {
            let cfg = MidwayConfig::new(PROCS, backend);
            let out = run_app_real(kind, cfg, &tcp(), Scale::Small).unwrap_or_else(|e| {
                panic!(
                    "{} under {} failed on the real transport: {e}",
                    kind.label(),
                    backend.label()
                )
            });
            assert!(
                out.verified,
                "{} failed its own verification under {} on the real transport",
                kind.label(),
                backend.label()
            );
        }
    }
}

/// A trace recorded on the real transport replays through the simulator
/// with bit-identical final memory — for every backend, after a round
/// trip through the trace file format.
#[test]
fn real_traces_replay_through_the_simulator_oracle() {
    for backend in BackendKind::DATA {
        let cfg = MidwayConfig::new(PROCS, backend).record(true);
        let out = run_app_real(AppKind::Sor, cfg, &tcp(), Scale::Small)
            .unwrap_or_else(|e| panic!("sor under {} failed: {e}", backend.label()));
        assert!(out.verified);

        let trace = Trace::from_outcome(&out, Scale::Small);
        let decoded = Trace::decode(&trace.encode()).expect("trace round-trips");
        let check = verify_real_trace(&decoded, &out.store_digests, true).unwrap_or_else(|d| {
            panic!(
                "simulator oracle rejected the {} real run: {d}",
                backend.label()
            )
        });
        assert!(check.digests_checked);
        assert!(check.total_ops > 0, "the trace must record the run");
    }
}

/// Repeated real-transport runs always converge to the same final memory
/// as each other and as the simulator — wall-clock scheduling jitter
/// changes timings, never bytes.
#[test]
fn repeated_real_runs_agree_on_final_memory() {
    let mut baseline: Option<Vec<u64>> = None;
    for round in 0..5 {
        let cfg = MidwayConfig::new(PROCS, BackendKind::Rt).record(true);
        let out = run_app_real(AppKind::Sor, cfg, &tcp(), Scale::Small)
            .unwrap_or_else(|e| panic!("round {round} failed: {e}"));
        assert!(out.verified, "round {round} failed verification");

        let trace = Trace::from_outcome(&out, Scale::Small);
        verify_real_trace(&trace, &out.store_digests, true)
            .unwrap_or_else(|d| panic!("round {round}: oracle rejected the run: {d}"));

        match &baseline {
            None => baseline = Some(out.store_digests),
            Some(first) => assert_eq!(
                &out.store_digests, first,
                "round {round} reached different final memory than round 0"
            ),
        }
    }
}

/// Over lossy UDP the reliable channel masks injected drops and
/// duplicates: the run still completes, verifies, and satisfies the
/// simulator oracle, and the injection demonstrably happened.
#[test]
fn lossy_udp_run_completes_and_still_satisfies_the_oracle() {
    // 5% drop + 5% duplication, deterministic schedule.
    let plan = FaultPlan::seeded(7).drop_ppm(50_000).dup_ppm(50_000);
    let real = RealConfig::udp(plan).watchdog(Some(Duration::from_secs(60)));
    let cfg = MidwayConfig::new(PROCS, BackendKind::Rt).record(true);

    let run = sor::run_real(cfg, &real, sor::Params::small()).expect("lossy sor run failed");
    assert!(sor::verified(&run.results));

    let injected: u64 = run.reports.iter().map(|r| r.fault_stats.total()).sum();
    assert!(injected > 0, "the loss plan must actually inject faults");
    let link = run.link_totals();
    assert!(
        link.data_frames_sent > 0,
        "UDP mode must frame messages reliably"
    );
    assert!(
        link.retransmits > 0 || link.dup_frames_dropped > 0,
        "masking 5% loss must leave reliable-channel evidence \
         (stats: {link:?})"
    );

    let trace = Trace::from_run("sor", Scale::Small.label(), true, &run);
    verify_real_trace(&trace, &run.store_digests, true)
        .unwrap_or_else(|d| panic!("oracle rejected the lossy UDP run: {d}"));
}

/// The watchdog aborts a hung run with per-processor state dumps instead
/// of letting the suite hang: a two-processor barrier only one processor
/// ever reaches cannot finish.
#[test]
fn watchdog_aborts_a_stuck_run_with_dumps() {
    use midway_core::{Midway, RealError, SystemBuilder};

    let mut b = SystemBuilder::new();
    let cell = b.shared_array::<u64>("cell", 1, 1);
    let bar = b.barrier(vec![cell.full_range()]);
    let spec = b.build();

    let real = RealConfig::tcp().watchdog(Some(Duration::from_millis(300)));
    let cfg = MidwayConfig::new(2, BackendKind::Rt);
    let err = Midway::run_real(cfg, &real, &spec, |p| {
        if p.id() == 0 {
            p.barrier(bar); // processor 1 never arrives
        }
    })
    .expect_err("a one-sided barrier must trip the watchdog");
    match err {
        RealError::Watchdog { dumps, .. } => {
            assert_eq!(dumps.len(), 2, "one state dump per processor");
        }
        other => panic!("expected a watchdog abort, got: {other}"),
    }
}
