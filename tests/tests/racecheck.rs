//! The dynamic entry-consistency checker, end to end.
//!
//! Three properties, each exercised across backends:
//!
//! * **Zero false positives** — the five correct applications are clean
//!   on every data-moving backend.
//! * **Off-clock** — a run with checking enabled is bit-for-bit identical
//!   to one without: same finish time, message count, counters, final
//!   memory digests.
//! * **True positives** — every seeded mutant produces a finding of the
//!   planted kind with the planted provenance, and a recorded mutant
//!   trace still reports it when replayed under `racecheck`.

use midway_apps::mutants::{run_mutant, MutantKind};
use midway_apps::{run_app, AppKind, Scale};
use midway_core::{BackendKind, FindingKind, Midway, MidwayConfig, SystemBuilder};
use midway_replay::{racecheck_replay, record_app, Trace};

#[test]
fn clean_apps_are_clean_on_every_data_backend() {
    for kind in AppKind::all() {
        for backend in BackendKind::DATA {
            let cfg = MidwayConfig::new(4, backend).check(true);
            let out = run_app(kind, cfg, Scale::Small);
            assert!(out.verified, "{} under {}", kind.label(), backend.label());
            let report = out.check.expect("checker ran");
            assert!(
                report.is_clean(),
                "false positive: {} under {}: {}\nfirst: {}",
                kind.label(),
                backend.label(),
                report.summary(),
                report
                    .findings
                    .first()
                    .map_or_else(|| "<capped>".to_string(), std::string::ToString::to_string),
            );
            assert!(report.events > 0, "checker saw no events");
        }
    }
}

#[test]
fn checking_is_off_clock_bit_for_bit() {
    for backend in [BackendKind::Rt, BackendKind::Vm, BackendKind::Blast] {
        let cfg = MidwayConfig::new(4, backend);
        let plain = run_app(AppKind::Sor, cfg, Scale::Small);
        let checked = run_app(AppKind::Sor, cfg.check(true), Scale::Small);
        assert_eq!(plain.finish_time, checked.finish_time, "{backend:?}");
        assert_eq!(plain.messages, checked.messages, "{backend:?}");
        assert_eq!(plain.counters, checked.counters, "{backend:?}");
        assert!(plain.check.is_none());
        assert!(checked.check.is_some());
    }
}

#[test]
fn checked_run_has_identical_memory_and_clocks() {
    // The app driver erases digests, so compare raw runs too.
    let mut b = SystemBuilder::new();
    let x = b.shared_array::<u64>("x", 8, 1);
    let lock = b.lock(vec![x.full_range()]);
    let spec = b.build();
    let prog = |p: &mut midway_core::Proc| {
        for i in 0..8 {
            p.acquire(lock);
            let v = p.read(&x, i);
            p.write(&x, i, v + p.id() as u64 + 1);
            p.release(lock);
        }
    };
    let cfg = MidwayConfig::new(3, BackendKind::Rt);
    let plain = Midway::run(cfg, &spec, prog).unwrap();
    let checked = Midway::run(cfg.check(true), &spec, prog).unwrap();
    assert_eq!(plain.finish_time, checked.finish_time);
    assert_eq!(plain.messages, checked.messages);
    assert_eq!(plain.counters, checked.counters);
    assert_eq!(plain.store_digests, checked.store_digests);
    assert!(checked.check.expect("checker ran").is_clean());
}

#[test]
fn every_mutant_is_detected_on_every_data_backend() {
    for kind in MutantKind::ALL {
        for backend in BackendKind::DATA {
            let (run, expect) = run_mutant(kind, MidwayConfig::new(4, backend));
            let report = run.check.expect("checker ran");
            let f = report.first_of(expect.kind).unwrap_or_else(|| {
                panic!(
                    "{} under {}: no {:?} finding; report: {}",
                    kind.label(),
                    backend.label(),
                    expect.kind,
                    report.summary()
                )
            });
            assert_eq!(f.proc, expect.proc, "{} {}", kind.label(), backend.label());
            assert_eq!(
                f.alloc.as_deref(),
                Some(expect.alloc),
                "{} {}",
                kind.label(),
                backend.label()
            );
            if expect.kind == FindingKind::BindingViolation {
                assert!(f.lock.is_some(), "binding violations name the lock");
            }
            if expect.kind == FindingKind::StaleRead {
                let s = f.stale.expect("stale reads carry the missed write");
                assert_ne!(s.writer, f.proc);
            }
        }
    }
}

#[test]
fn clean_recorded_trace_racechecks_bit_for_bit() {
    let (outcome, trace) = record_app(
        AppKind::Quicksort,
        MidwayConfig::new(4, BackendKind::Rt),
        Scale::Small,
    );
    assert!(outcome.verified);
    let decoded = Trace::decode(&trace.encode()).expect("round-trip");
    let run = racecheck_replay(&decoded).expect("checked replay must stay bit-for-bit");
    assert!(
        run.check.expect("checker ran").is_clean(),
        "false positive on a replayed clean trace"
    );
}

#[test]
fn recorded_mutant_trace_still_reports_the_bug() {
    // Write and synchronization violations survive into traces (reads do
    // not — they are local and never recorded).
    let cfg = MidwayConfig::new(4, BackendKind::Rt).record(true);
    let (run, expect) = run_mutant(MutantKind::DropAcquire, cfg);
    let trace = Trace::from_run("mutant", "small", false, &run);
    let decoded = Trace::decode(&trace.encode()).expect("round-trip");
    let replayed = racecheck_replay(&decoded).expect("checked replay must stay bit-for-bit");
    let report = replayed.check.expect("checker ran");
    let f = report
        .first_of(expect.kind)
        .expect("bug survives the trace");
    assert_eq!(f.proc, expect.proc);
    assert_eq!(f.alloc.as_deref(), Some(expect.alloc));
}

#[test]
fn out_of_bounds_slice_write_is_a_typed_error() {
    let mut b = SystemBuilder::new();
    let x = b.shared_array::<u64>("x", 4, 1);
    let lock = b.lock(vec![x.full_range()]);
    let spec = b.build();
    let err = Midway::run(
        MidwayConfig::new(2, BackendKind::Rt),
        &spec,
        |p: &mut midway_core::Proc| {
            p.acquire(lock);
            p.write_slice(&x, 2, &[1u64, 2, 3]); // elements 2..5 of 4
            p.release(lock);
        },
    )
    .unwrap_err();
    match err {
        midway_core::SimError::AppViolation { message, .. } => {
            assert!(message.contains("out of bounds"), "{message}");
            assert!(message.contains("2..5"), "{message}");
        }
        other => panic!("expected AppViolation, got {other:?}"),
    }
}
