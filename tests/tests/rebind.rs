//! Lock rebinding (paper §2: "the association between data and
//! synchronization objects can be changed at runtime"), across the stack:
//! the binding a holder sees, the data a post-rebind transfer ships, and
//! the recorded `Rebind` operation's round-trip through the trace format.

use midway_core::{BackendKind, Midway, MidwayConfig, Proc, SystemBuilder, TraceOp};
use midway_replay::{verify_replay, Trace};

#[test]
fn rebind_while_exclusive_updates_the_holder_binding() {
    let mut b = SystemBuilder::new();
    let data = b.shared_array::<u64>("data", 8, 1);
    let lock = b.lock(vec![data.full_range()]);
    let spec = b.build();
    let run = Midway::run(
        MidwayConfig::new(2, BackendKind::Rt),
        &spec,
        |p: &mut Proc| {
            if p.id() == 0 {
                p.acquire(lock);
                let before = p.bound_ranges(lock);
                p.rebind(lock, vec![data.range(4..8)]);
                let after = p.bound_ranges(lock);
                p.write(&data, 5, 9);
                p.release(lock);
                (before, after)
            } else {
                (Vec::new(), Vec::new())
            }
        },
    )
    .unwrap();
    let (before, after) = &run.results[0];
    assert_eq!(before, &[data.full_range()]);
    assert_eq!(after, &[data.range(4..8)]);
}

/// A write inside the rebound range must reach the next holder on every
/// data-moving backend: bindings travel with grants, and collection scans
/// the *new* ranges.
#[test]
fn transfer_after_rebind_ships_the_new_range() {
    for backend in BackendKind::DATA {
        let mut b = SystemBuilder::new();
        let data = b.shared_array::<u64>("data", 8, 1);
        let lock = b.lock(vec![data.full_range()]);
        let spec = b.build();
        let run = Midway::run(MidwayConfig::new(2, backend), &spec, |p: &mut Proc| {
            if p.id() == 0 {
                p.acquire(lock);
                p.rebind(lock, vec![data.range(4..8)]);
                p.write(&data, 5, 77);
                p.release(lock);
                0
            } else {
                // Home serialization orders this grant after the release.
                p.idle(50_000);
                p.acquire(lock);
                let v = p.read(&data, 5);
                p.release(lock);
                v
            }
        })
        .unwrap();
        assert_eq!(run.results[1], 77, "under {}", backend.label());
    }
}

#[test]
fn recorded_rebind_round_trips_and_replays_bit_for_bit() {
    let mut b = SystemBuilder::new();
    let data = b.shared_array::<u64>("data", 8, 1);
    let lock = b.lock(vec![data.full_range()]);
    let spec = b.build();
    let cfg = MidwayConfig::new(2, BackendKind::Rt).record(true);
    let run = Midway::run(cfg, &spec, |p: &mut Proc| {
        if p.id() == 0 {
            p.acquire(lock);
            p.rebind(lock, vec![data.range(0..4)]);
            p.write(&data, 1, 5);
            p.release(lock);
        } else {
            p.idle(50_000);
            p.acquire(lock);
            p.write(&data, 2, 6);
            p.release(lock);
        }
    })
    .unwrap();
    let trace = Trace::from_run("rebind", "tiny", true, &run);
    let decoded = Trace::decode(&trace.encode()).expect("round-trip");
    assert_eq!(decoded, trace, "encode/decode must be lossless");
    let rebinds: Vec<_> = decoded
        .ops
        .iter()
        .flatten()
        .filter(|op| matches!(op, TraceOp::Rebind { .. }))
        .collect();
    assert_eq!(rebinds.len(), 1, "the rebind survives the format");
    match rebinds[0] {
        TraceOp::Rebind { lock: l, ranges } => {
            assert_eq!(*l, 0);
            assert_eq!(ranges, &vec![data.range(0..4)]);
        }
        _ => unreachable!(),
    }
    verify_replay(&decoded).expect("replayed rebind run stays bit-for-bit");
}
