//! Property test for the [`WriteDetector`] seam: for every data backend,
//! a random store sequence trapped on one detector, collected with
//! `collect_for`, and applied on a peer with `apply_update` must
//! reproduce the source's bound bytes exactly — driven entirely through
//! `Box<dyn WriteDetector>`, exactly as the protocol engine drives it.
//!
//! Ownership ping-pongs between the two nodes for several rounds, so the
//! exactly-once machinery (RT last-seen times, VM incarnation chains,
//! twin refreshes) is exercised, not just the first full transfer.

use std::sync::Arc;

use midway_core::{
    BackendKind, Counters, DetectCx, GrantPayload, MidwayConfig, SystemBuilder, SystemSpec,
    WriteDetector,
};
use midway_mem::{Addr, LocalStore};
use midway_proto::{Binding, LamportClock};
use midway_sim::{Category, SplitMix64};

/// One processor's detector-facing state, as the engine would hold it.
struct Node {
    store: LocalStore,
    clock: LamportClock,
    counters: Counters,
    binding: Binding,
    det: Box<dyn WriteDetector>,
}

impl Node {
    fn new(
        backend: BackendKind,
        cfg: &MidwayConfig,
        spec: &Arc<SystemSpec>,
        ranges: &Binding,
    ) -> Node {
        Node {
            store: LocalStore::new(spec.layout().clone()),
            clock: LamportClock::new(),
            counters: Counters::default(),
            binding: ranges.clone(),
            det: backend.new_detector(cfg, spec),
        }
    }

    /// Runs `f` under a [`DetectCx`] built the way the engine builds one
    /// (cycle charges discarded — costs are the simulator's concern).
    fn with_cx<R>(
        &mut self,
        cfg: &MidwayConfig,
        spec: &SystemSpec,
        f: impl FnOnce(&mut dyn WriteDetector, &mut DetectCx<'_>, &mut Binding) -> R,
    ) -> R {
        let mut charge = |_: Category, _: u64| {};
        let mut cx = DetectCx {
            store: &mut self.store,
            spec,
            cost: cfg.cost,
            clock: &mut self.clock,
            counters: &mut self.counters,
            charge: &mut charge,
        };
        f(&mut *self.det, &mut cx, &mut self.binding)
    }

    /// The bytes of every bound range, concatenated.
    fn bound_bytes(&mut self) -> Vec<u8> {
        let ranges: Vec<_> = self.binding.ranges().to_vec();
        let mut out = Vec::new();
        for r in ranges {
            out.extend_from_slice(self.store.bytes(Addr(r.start), (r.end - r.start) as usize));
        }
        out
    }
}

/// A layout that exercises every mechanism at once: a doubleword-line
/// array below the hybrid paging threshold and a multi-page array above
/// it (so the hybrid detector runs templates on one and twins on the
/// other in the same transfer).
fn build_spec() -> (Arc<SystemSpec>, Binding, Vec<(Addr, usize)>) {
    let mut b = SystemBuilder::new();
    let small = b.shared_array::<f64>("small", 64, 1);
    let big = b.shared_array::<u64>("big", 4096, 4); // 32 KB: paged under hybrid
    b.lock(vec![small.full_range(), big.range(0..1024)]);
    let spec = b.build();
    let binding = Binding::new(vec![small.full_range(), big.range(0..1024)]);
    // Every (addr, len) a random store may pick: whole elements of the
    // bound slices, so stores stay aligned and inside cache lines.
    let mut slots = Vec::new();
    for i in 0..small.len() {
        slots.push((small.addr(i), 8));
    }
    for i in 0..1024 {
        slots.push((big.addr(i), 8));
    }
    (spec, binding, slots)
}

fn roundtrip(backend: BackendKind, seed: u64) {
    let cfg = MidwayConfig::new(2, backend);
    let (spec, binding, slots) = build_spec();
    let mut rng = SplitMix64::new(seed);
    let mut a = Node::new(backend, &cfg, &spec, &binding);
    let mut b = Node::new(backend, &cfg, &spec, &binding);

    for round in 0..6 {
        let (owner, requester) = if round % 2 == 0 {
            (&mut a, &mut b)
        } else {
            (&mut b, &mut a)
        };
        // The owner stores a random batch through its trap, exactly as
        // the per-processor API does: trap first, then the bytes land.
        let stores = 1 + rng.next_below(40) as usize;
        for _ in 0..stores {
            let (addr, len) = slots[rng.next_below(slots.len() as u64) as usize];
            let val = rng.next_u64();
            owner.with_cx(&cfg, &spec, |det, cx, _| {
                det.trap_write(cx, addr, len);
                cx.store.write_bytes(addr, &val.to_le_bytes());
            });
        }
        // Requester acquires: its token travels to the owner, which
        // collects on its behalf; the grant comes back and is applied.
        let seen = requester.det.seen_token(0, &requester.binding);
        let payload = owner.with_cx(&cfg, &spec, |det, cx, binding| {
            det.collect_for(cx, 0, binding, seen)
        });
        assert!(
            !matches!(payload, GrantPayload::Current),
            "data backends always ship a payload"
        );
        requester.with_cx(&cfg, &spec, |det, cx, binding| {
            det.apply_update(cx, 0, binding, payload)
        });
        assert_eq!(
            a.bound_bytes(),
            b.bound_bytes(),
            "{backend:?} seed {seed:#x} round {round}: bound bytes diverge after transfer"
        );
    }
}

#[test]
fn every_data_backend_roundtrips_random_stores() {
    for backend in BackendKind::DATA {
        for case in 0..8u64 {
            roundtrip(backend, 0xde7ec7 ^ (case << 8));
        }
    }
}
