//! Cross-backend protocol integration tests.
//!
//! Every backend must provide the same entry-consistency semantics; they
//! differ only in cost and traffic. These tests run identical programs on
//! all backends and check the memory semantics.

use std::sync::Arc;

use midway_core::{BackendKind, Midway, MidwayConfig, NetModel, Proc, SystemBuilder, SystemSpec};

const DATA_BACKENDS: [BackendKind; 5] = [
    BackendKind::Rt,
    BackendKind::Vm,
    BackendKind::Blast,
    BackendKind::TwinAll,
    BackendKind::Hybrid,
];

fn counter_spec() -> (
    Arc<SystemSpec>,
    midway_core::LockId,
    midway_core::SharedArray<u64>,
) {
    let mut b = SystemBuilder::new();
    let counter = b.shared_array::<u64>("counter", 4, 1);
    let lock = b.lock(vec![counter.full_range()]);
    (b.build(), lock, counter)
}

#[test]
fn lock_protected_counter_is_sequentially_consistent_on_all_backends() {
    for backend in DATA_BACKENDS {
        let (spec, lock, counter) = counter_spec();
        let rounds = 25u64;
        let run = Midway::run(MidwayConfig::new(4, backend), &spec, |p: &mut Proc| {
            for _ in 0..rounds {
                p.acquire(lock);
                let v = p.read(&counter, 0);
                p.write(&counter, 0, v + 1);
                p.release(lock);
            }
            p.acquire(lock);
            let v = p.read(&counter, 0);
            p.release(lock);
            v
        })
        .unwrap();
        let max = *run.results.iter().max().unwrap();
        assert_eq!(max, 4 * rounds, "{backend:?}: lost updates");
    }
}

#[test]
fn barrier_makes_partitioned_writes_visible_everywhere() {
    for backend in DATA_BACKENDS {
        let mut b = SystemBuilder::new();
        let procs = 4;
        let n = 64;
        let data = b.shared_array::<u64>("data", n, 1);
        let chunk = n / procs;
        let partitions: Vec<_> = (0..procs)
            .map(|p| vec![data.range(p * chunk..(p + 1) * chunk)])
            .collect();
        let bar = b.barrier_partitioned(vec![data.full_range()], partitions);
        let spec = b.build();

        let run = Midway::run(MidwayConfig::new(procs, backend), &spec, |p: &mut Proc| {
            let me = p.id();
            for i in me * chunk..(me + 1) * chunk {
                p.write(&data, i, (i * 10 + 1) as u64);
            }
            p.barrier(bar);
            // Every processor must now see every write.
            (0..n).map(|i| p.read(&data, i)).collect::<Vec<u64>>()
        })
        .unwrap();
        let expect: Vec<u64> = (0..n).map(|i| (i * 10 + 1) as u64).collect();
        for (pid, got) in run.results.iter().enumerate() {
            assert_eq!(got, &expect, "{backend:?}: proc {pid} has stale data");
        }
    }
}

#[test]
fn repeated_barriers_propagate_fresh_values() {
    for backend in DATA_BACKENDS {
        let mut b = SystemBuilder::new();
        let procs = 3;
        let data = b.shared_array::<u64>("data", procs, 1);
        let partitions: Vec<_> = (0..procs).map(|p| vec![data.range(p..p + 1)]).collect();
        let bar = b.barrier_partitioned(vec![data.full_range()], partitions);
        let spec = b.build();

        let run = Midway::run(MidwayConfig::new(procs, backend), &spec, |p: &mut Proc| {
            let me = p.id();
            let mut sums = Vec::new();
            for round in 1..=5u64 {
                p.write(&data, me, round * (me as u64 + 1));
                p.barrier(bar);
                let sum: u64 = (0..procs).map(|i| p.read(&data, i)).sum();
                sums.push(sum);
                p.barrier(bar);
            }
            sums
        })
        .unwrap();
        // After round r, data[i] == r*(i+1), so the sum is r*(1+2+3).
        let expect: Vec<u64> = (1..=5u64).map(|r| r * 6).collect();
        for (pid, got) in run.results.iter().enumerate() {
            assert_eq!(got, &expect, "{backend:?}: proc {pid}");
        }
    }
}

#[test]
fn shared_mode_readers_see_the_last_exclusive_write() {
    for backend in DATA_BACKENDS {
        let (spec, lock, counter) = counter_spec();
        let run = Midway::run(MidwayConfig::new(4, backend), &spec, |p: &mut Proc| {
            if p.id() == 0 {
                p.acquire(lock);
                p.write(&counter, 0, 777);
                p.write(&counter, 3, 888);
                p.release(lock);
                (777, 888)
            } else {
                // Readers acquire non-exclusively; they must observe the
                // writer's values once the writer has released.
                loop {
                    p.acquire_shared(lock);
                    let a = p.read(&counter, 0);
                    let b = p.read(&counter, 3);
                    p.release_shared(lock);
                    if a != 0 {
                        return (a, b);
                    }
                    p.idle(10_000);
                }
            }
        })
        .unwrap();
        for (pid, got) in run.results.iter().enumerate() {
            assert_eq!(*got, (777, 888), "{backend:?}: proc {pid}");
        }
    }
}

#[test]
fn rebinding_moves_the_protected_range() {
    // quicksort's pattern: a lock is rebound to a new slice of the array
    // for every task. RT and VM must both track the new ranges.
    for backend in [BackendKind::Rt, BackendKind::Vm] {
        let mut b = SystemBuilder::new();
        let data = b.shared_array::<u64>("data", 64, 1);
        let task = b.lock(vec![data.range(0..8)]);
        let spec = b.build();

        let run = Midway::run(MidwayConfig::new(2, backend), &spec, |p: &mut Proc| {
            if p.id() == 0 {
                p.acquire(task);
                for i in 0..8 {
                    p.write(&data, i, 100 + i as u64);
                }
                // Hand the lock over to a new range for the next task.
                p.rebind(task, vec![data.range(8..16)]);
                for i in 8..16 {
                    p.write(&data, i, 200 + i as u64);
                }
                p.release(task);
                0
            } else {
                loop {
                    p.acquire(task);
                    let probe = p.read(&data, 8);
                    if probe == 0 {
                        p.release(task);
                        p.idle(10_000);
                        continue;
                    }
                    // The rebound range must be consistent.
                    let sum: u64 = (8..16).map(|i| p.read(&data, i)).sum();
                    p.release(task);
                    return sum;
                }
            }
        })
        .unwrap();
        let expect: u64 = (8..16).map(|i| 200 + i as u64).sum();
        assert_eq!(run.results[1], expect, "{backend:?}");
    }
}

#[test]
fn standalone_single_proc_runs_without_any_traffic() {
    let mut b = SystemBuilder::new();
    let data = b.shared_array::<u64>("data", 16, 1);
    let lock = b.lock(vec![data.full_range()]);
    let bar = b.barrier(vec![]);
    let spec = b.build();
    let run = Midway::run(MidwayConfig::standalone(), &spec, |p: &mut Proc| {
        p.acquire(lock);
        for i in 0..16 {
            p.write(&data, i, i as u64);
        }
        p.release(lock);
        p.barrier(bar);
        (0..16).map(|i| p.read(&data, i)).sum::<u64>()
    })
    .unwrap();
    assert_eq!(run.results[0], 120);
    assert_eq!(run.messages, 0, "standalone must not touch the network");
    let c = &run.counters[0];
    assert_eq!(c.dirtybits_set, 0);
    assert_eq!(c.write_faults, 0);
}

#[test]
fn uniprocessor_rt_pays_trapping_but_never_collects() {
    // Paper §4: "The execution time for the uniprocessor RT-DSM version is
    // highest since it pays the entire cost for write detection"; there is
    // no collection because data never transfers.
    let mut b = SystemBuilder::new();
    let data = b.shared_array::<u64>("data", 16, 1);
    let lock = b.lock(vec![data.full_range()]);
    let spec = b.build();
    let run = Midway::run(
        MidwayConfig::new(1, BackendKind::Rt),
        &spec,
        |p: &mut Proc| {
            for round in 0..4 {
                p.acquire(lock);
                for i in 0..16 {
                    p.write(&data, i, round + i as u64);
                }
                p.release(lock);
            }
        },
    )
    .unwrap();
    let c = &run.counters[0];
    assert_eq!(c.dirtybits_set, 64);
    assert_eq!(c.clean_dirtybits_read + c.dirty_dirtybits_read, 0);
    assert_eq!(c.data_bytes_sent, 0);
    assert_eq!(run.messages, 0);
}

#[test]
fn uniprocessor_vm_faults_once_per_page_and_never_diffs() {
    // Paper §4: "The VM-DSM version pays for a single write fault on each
    // shared page. It never diffs or write protects a page, since the data
    // is never transferred."
    let mut b = SystemBuilder::new();
    let data = b.shared_array::<u64>("data", 2048, 1); // 16 KB = 4 pages
    let lock = b.lock(vec![data.full_range()]);
    let spec = b.build();
    let run = Midway::run(
        MidwayConfig::new(1, BackendKind::Vm),
        &spec,
        |p: &mut Proc| {
            for round in 0..3 {
                p.acquire(lock);
                for i in 0..2048 {
                    p.write(&data, i, round + i as u64);
                }
                p.release(lock);
            }
        },
    )
    .unwrap();
    let c = &run.counters[0];
    assert_eq!(c.write_faults, 4, "one fault per page, amortized after");
    assert_eq!(c.pages_diffed, 0);
    assert_eq!(c.pages_write_protected, 0);
}

#[test]
fn runs_are_deterministic() {
    let run_once = |backend| {
        let (spec, lock, counter) = counter_spec();
        let run = Midway::run(MidwayConfig::new(4, backend), &spec, |p: &mut Proc| {
            for _ in 0..10 {
                p.acquire(lock);
                let v = p.read(&counter, 0);
                p.write(&counter, 0, v + 1);
                p.release(lock);
                p.work(1_000);
            }
        })
        .unwrap();
        (
            run.finish_time,
            run.messages,
            run.counters
                .iter()
                .map(|c| (c.dirtybits_set, c.write_faults, c.data_bytes_sent))
                .collect::<Vec<_>>(),
        )
    };
    for backend in DATA_BACKENDS {
        let first = run_once(backend);
        for _ in 0..3 {
            assert_eq!(run_once(backend), first, "{backend:?} is nondeterministic");
        }
    }
}

#[test]
fn application_lock_cycle_is_reported_as_deadlock() {
    let mut b = SystemBuilder::new();
    let data = b.shared_array::<u64>("data", 2, 1);
    let l0 = b.lock(vec![data.range(0..1)]);
    let l1 = b.lock(vec![data.range(1..2)]);
    let spec = b.build();
    let err = Midway::run(
        MidwayConfig::new(2, BackendKind::Rt).net(NetModel::ideal()),
        &spec,
        |p: &mut Proc| {
            if p.id() == 0 {
                p.acquire(l0);
                p.acquire(l1);
            } else {
                p.acquire(l1);
                p.acquire(l0);
            }
        },
    )
    .unwrap_err();
    assert!(matches!(err, midway_core::SimError::Deadlock { .. }));
}

#[test]
fn rt_transfers_only_modified_lines_while_blast_ships_everything() {
    // The paper's central data-transfer claim: an exact update history
    // minimizes traffic; blast is the upper bound.
    let run_with = |backend| {
        let mut b = SystemBuilder::new();
        let data = b.shared_array::<u64>("data", 512, 1); // 4 KB bound
        let lock = b.lock(vec![data.full_range()]);
        let bar = b.barrier(vec![]);
        let spec = b.build();
        let run = Midway::run(MidwayConfig::new(2, backend), &spec, |p: &mut Proc| {
            for round in 0..4 {
                p.acquire(lock);
                // Sparse: one line touched per round.
                p.write(&data, round * 2 + p.id(), u64::MAX - round as u64);
                p.release(lock);
                // Force the lock to bounce between processors each round.
                p.barrier(bar);
            }
        })
        .unwrap();
        run.counters.iter().map(|c| c.data_bytes_sent).sum::<u64>()
    };
    let rt = run_with(BackendKind::Rt);
    let blast = run_with(BackendKind::Blast);
    assert!(rt < 1024, "RT ships only touched lines, got {rt}");
    assert!(
        blast >= 4 * 4096,
        "blast ships 4 KB on every transfer, got {blast}"
    );
}
