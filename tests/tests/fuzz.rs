//! The differential fuzzer as a test suite: a fixed band of seeds must
//! agree across every backend, and every planted mutant kind must be
//! caught with a minimized, still-failing reproducer.

use midway_apps::fuzz::{
    apply_mutation, backends_for, differential, mutant_caught, shrink, FuzzParams, Schedule,
};
use midway_apps::mutants::MutantKind;

/// A band of fixed seeds (covering single- and multi-processor shapes)
/// runs divergence-free on every applicable backend.
#[test]
fn fixed_seed_band_agrees_across_backends() {
    for seed in 0..20 {
        let s = Schedule::generate(seed, FuzzParams::for_seed(seed));
        assert!(s.validate(), "seed {seed}: invalid schedule generated");
        let divergences = differential(&s);
        assert!(
            divergences.is_empty(),
            "seed {seed} diverged: {}",
            divergences
                .iter()
                .map(|d| d.to_string())
                .collect::<Vec<_>>()
                .join("; ")
        );
    }
}

/// The single-processor shapes include the standalone backend in their
/// matrix; multi-processor shapes cover the five data-moving ones.
#[test]
fn backend_matrix_includes_standalone_for_single_proc_seeds() {
    let solo = FuzzParams::for_seed(9);
    assert_eq!(solo.procs, 1);
    assert_eq!(backends_for(solo.procs).len(), 6);
    let multi = FuzzParams::for_seed(0);
    assert!(multi.procs >= 2);
    assert_eq!(backends_for(multi.procs).len(), 5);
}

/// Every planted mutant kind is caught by the dynamic checker within a
/// small seed budget, and the shrunk reproducer still fails.
#[test]
fn every_mutant_kind_is_caught_and_shrinks() {
    for kind in MutantKind::ALL {
        let base = Schedule::generate(0, FuzzParams::mutant());
        let mutated = apply_mutation(&base, kind, 0).expect("mutation applies to the base");
        assert!(
            mutated.validate(),
            "{}: mutant schedule invalid",
            kind.label()
        );
        assert!(
            mutant_caught(&mutated),
            "{}: planted bug not caught at seed 0",
            kind.label()
        );
        let small = shrink(&mutated, &mutant_caught, 150);
        assert!(
            mutant_caught(&small),
            "{}: shrunk reproducer no longer caught",
            kind.label()
        );
        assert!(
            small.op_count() <= mutated.op_count(),
            "{}: shrink grew the schedule",
            kind.label()
        );
    }
}
