//! End-to-end tests of the service workload family: the sharded KV
//! store, the social-graph updater and the high-churn task queue,
//! across every backend, through the recording/replay oracle, and over
//! the real TCP transport.

use std::time::Duration;

use midway_apps::{run_app, run_app_real, AppKind, Scale};
use midway_core::{BackendKind, MidwayConfig, RealConfig};
use midway_replay::{record_app, verify_replay, Trace};

const PROCS: usize = 4;

/// Every service application completes and self-verifies on every
/// data-moving backend.
#[test]
fn every_service_app_verifies_on_every_backend() {
    for kind in AppKind::service() {
        for backend in BackendKind::DATA {
            let out = run_app(kind, MidwayConfig::new(PROCS, backend), Scale::Small);
            assert!(
                out.verified,
                "{} failed verification under {}",
                kind.label(),
                backend.label()
            );
        }
    }
}

/// The simulator is deterministic: rerunning a service app bit-for-bit
/// reproduces finish time, message count, and final memory.
#[test]
fn service_runs_are_deterministic() {
    for kind in AppKind::service() {
        let cfg = MidwayConfig::new(PROCS, BackendKind::Rt);
        let a = run_app(kind, cfg, Scale::Small);
        let b = run_app(kind, cfg, Scale::Small);
        assert_eq!(a.finish_time, b.finish_time, "{}", kind.label());
        assert_eq!(a.messages, b.messages, "{}", kind.label());
        assert_eq!(a.store_digests, b.store_digests, "{}", kind.label());
    }
}

/// Service apps run on the standalone uniprocessor build too.
#[test]
fn service_apps_run_standalone() {
    for kind in AppKind::service() {
        let out = run_app(kind, MidwayConfig::standalone(), Scale::Small);
        assert!(out.verified, "{} failed standalone", kind.label());
    }
}

/// Recorded service runs replay bit-for-bit through the trace format.
#[test]
fn service_traces_replay_bit_for_bit() {
    for kind in AppKind::service() {
        let cfg = MidwayConfig::new(PROCS, BackendKind::Rt);
        let (out, trace) = record_app(kind, cfg, Scale::Small);
        assert!(out.verified, "{} failed while recording", kind.label());
        // Round-trip the encoded form too: what ships is what replays.
        let decoded = Trace::decode(&trace.encode()).expect("trace round-trips");
        verify_replay(&decoded)
            .unwrap_or_else(|e| panic!("{} trace diverged on replay: {e}", kind.label()));
    }
}

/// The service family survives the real TCP transport (threads and
/// loopback sockets instead of virtual time).
#[test]
fn service_apps_complete_on_tcp() {
    let real = RealConfig::tcp().watchdog(Some(Duration::from_secs(60)));
    for kind in AppKind::service() {
        let cfg = MidwayConfig::new(PROCS, BackendKind::Rt);
        let out = run_app_real(kind, cfg, &real, Scale::Small)
            .unwrap_or_else(|e| panic!("{} failed on TCP: {e}", kind.label()));
        assert!(out.verified, "{} failed verification on TCP", kind.label());
    }
}
