//! End-to-end crash fault tolerance: a processor that fails mid-run and
//! restarts from its checkpoint + write-ahead log must rejoin the
//! computation and drive it to the exact fault-free final state.
//!
//! Three layers of assurance, mirroring `fault_tolerance.rs`:
//!
//! * every scheduled crash is **taken and recovered deterministically**
//!   — same plan, same run, bit for bit (the crash oracle replays
//!   twice and compares everything);
//! * live runs with crashes still **pass the application's own
//!   verifier**;
//! * the lock-order-independent applications (sor, matrix) **converge
//!   to the exact crash-free final memory and Table 2 counters** on
//!   every data-moving backend (the strict crash oracle); task-queue
//!   applications are checked with the lenient oracle, since a
//!   processor being down legitimately reorders lock grants.

use midway_apps::{run_app, AppKind, Scale};
use midway_core::{BackendKind, BarrierShape, FaultPlan, HomeMap, MidwayConfig};
use midway_replay::{record_app, verify_crash_determinism, verify_crash_replay, Trace};

/// Records `kind` at 4 processors under `backend` and returns the trace
/// (round-tripped through the byte format, as a replayer sees it).
fn record(kind: AppKind, backend: BackendKind) -> Trace {
    record_cfg(kind, MidwayConfig::new(4, backend))
}

fn record_cfg(kind: AppKind, cfg: MidwayConfig) -> Trace {
    let (outcome, trace) = record_app(kind, cfg, Scale::Small);
    assert!(
        outcome.verified,
        "{} failed verification under {}",
        kind.label(),
        cfg.backend.label()
    );
    Trace::decode(&trace.encode()).expect("trace round-trip")
}

/// One mid-run crash of processor 1, scheduled relative to the recorded
/// run's length so it lands inside the computation for every application.
fn one_crash(trace: &Trace) -> FaultPlan {
    let at = (trace.meta.finish_cycles / 3).max(1);
    let down = (trace.meta.finish_cycles / 20).max(1);
    FaultPlan::none().with_crash(1, at, down)
}

/// sor and matrix under every data backend: strict convergence — final
/// memory and counters identical to the crash-free run — after one
/// mid-run crash with checkpointed recovery. This is the headline
/// acceptance property.
#[test]
fn sor_and_matrix_converge_after_a_crash_on_every_backend() {
    for kind in [AppKind::Sor, AppKind::Matmul] {
        for backend in BackendKind::DATA {
            // Checkpoint at every boundary so even the small workloads
            // (few synchronization operations) write images; the interval
            // rides in the recorded configuration, so the oracle's crashed
            // replay uses it too.
            let trace = record_cfg(kind, MidwayConfig::new(4, backend).checkpoint_every(1));
            let check = verify_crash_replay(&trace, one_crash(&trace))
                .unwrap_or_else(|e| panic!("{} on {}: {e}", kind.label(), backend.label()));
            assert_eq!(check.crashes, 1, "the scheduled crash must be taken");
            assert!(
                check.checkpoints_written > 0,
                "release/barrier boundaries must have produced checkpoints"
            );
            assert!(
                check.recovery_replay_bytes > 0,
                "recovery must replay state from stable storage"
            );
            assert!(
                check.slowdown() >= 1.0,
                "a crash cannot make the run faster"
            );
        }
    }
}

/// Every processor crashes once, at staggered times — the cluster still
/// converges to the crash-free state.
#[test]
fn every_processor_crashing_once_still_converges() {
    let trace = record(AppKind::Sor, BackendKind::Rt);
    let len = trace.meta.finish_cycles;
    let mut plan = FaultPlan::none();
    for p in 0..4 {
        plan = plan.with_crash(p, len / 5 + (p as u64) * (len / 10), len / 30);
    }
    let check = verify_crash_replay(&trace, plan).expect("4-crash sor");
    assert_eq!(check.crashes, 4, "all four crashes must be taken");
    assert!(check.downtime_cycles > 0);
}

/// The same processor crashing twice exercises the checkpoint rotation:
/// the second recovery reconstructs from images and logs written after
/// the first.
#[test]
fn repeated_crashes_of_one_processor_converge() {
    let trace = record(AppKind::Sor, BackendKind::Rt);
    let len = trace.meta.finish_cycles;
    let plan = FaultPlan::none()
        .with_crash(2, len / 4, len / 40)
        .with_crash(2, len / 2, len / 40);
    let check = verify_crash_replay(&trace, plan).expect("double crash");
    assert_eq!(check.crashes, 2);
}

/// Crash recovery composes with the scale-out machinery: sharded sync
/// homes and combining-tree barriers.
#[test]
fn recovery_composes_with_sharded_homes_and_tree_barriers() {
    let cfg = MidwayConfig::new(4, BackendKind::Rt)
        .home_map(HomeMap::Sharded { seed: 5 })
        .barrier_shape(BarrierShape::Tree { arity: 2 });
    let trace = record_cfg(AppKind::Sor, cfg);
    verify_crash_replay(&trace, one_crash(&trace)).expect("sharded + tree recovery");
}

/// Crash recovery composes with an unreliable network: frames lost to
/// both the lossy link *and* the crash window are all repaired.
#[test]
fn recovery_composes_with_a_lossy_network() {
    let trace = record(AppKind::Sor, BackendKind::Rt);
    let at = trace.meta.finish_cycles / 3;
    let plan = FaultPlan::lossy(7, 10_000).with_crash(1, at, at / 5);
    let check = verify_crash_replay(&trace, plan).expect("loss + crash");
    assert!(check.link.retransmits > 0, "1% loss must retransmit");
}

/// Task-queue applications recover deterministically; final state
/// legitimately depends on lock-grant order, so the lenient oracle
/// applies at the replay level.
#[test]
fn task_queue_apps_recover_deterministically() {
    let trace = record(AppKind::Quicksort, BackendKind::Rt);
    verify_crash_determinism(&trace, one_crash(&trace)).expect("quicksort crash determinism");
}

/// Live runs (the application recomputing, not replaying recorded bytes)
/// still verify their own output after a crash, and the run's counters
/// and link statistics show the full recovery story: the crash taken,
/// checkpoints written, WAL bytes logged, and peers observing the new
/// incarnation's epoch.
#[test]
fn live_runs_verify_output_and_account_for_recovery() {
    let cfg = MidwayConfig::new(4, BackendKind::Rt).crash(1, 400_000, 80_000);
    let out = run_app(AppKind::Sor, cfg, Scale::Small);
    assert!(
        out.verified,
        "sor failed its own verification after a crash"
    );

    let total = out
        .counters
        .iter()
        .fold(midway_core::Counters::default(), |mut t, c| {
            t.add(c);
            t
        });
    assert_eq!(total.crashes, 1, "the scheduled crash must be taken");
    assert!(total.downtime_cycles >= 80_000);
    assert!(total.checkpoints_written > 0, "boundaries must checkpoint");
    assert!(total.wal_bytes_logged > 0, "writes must reach the WAL");
    assert!(total.recovery_replay_bytes > 0);
    assert!(total.recovery_cycles > 0, "recovery must cost cycles");

    let link = out.link_totals();
    assert!(
        link.peer_recoveries_observed > 0,
        "peers must observe the recovered processor's new epoch"
    );
}

/// Checkpointing without any crash is pure overhead, never a behaviour
/// change: the run converges to the same final memory and passes its
/// verifier, and nothing recovery-related is counted.
#[test]
fn checkpointing_without_crashes_is_pure_overhead() {
    let base = run_app(
        AppKind::Sor,
        MidwayConfig::new(4, BackendKind::Rt),
        Scale::Small,
    );
    let ckpt = run_app(
        AppKind::Sor,
        MidwayConfig::new(4, BackendKind::Rt).checkpoint_every(4),
        Scale::Small,
    );
    assert!(ckpt.verified);
    assert_eq!(
        base.store_digests, ckpt.store_digests,
        "checkpointing must not change the computation"
    );
    let total = ckpt
        .counters
        .iter()
        .fold(midway_core::Counters::default(), |mut t, c| {
            t.add(c);
            t
        });
    assert!(total.checkpoints_written > 0);
    assert_eq!(total.crashes, 0);
    assert_eq!(total.recovery_replay_bytes, 0);
}

/// A trace recorded *with* a crash plan carries it: the v5 header
/// round-trips crashes and the checkpoint interval, and the decoded
/// trace replays bit for bit (crashes included).
#[test]
fn crash_plans_round_trip_through_the_trace_format() {
    let cfg = MidwayConfig::new(4, BackendKind::Rt)
        .crash(1, 400_000, 80_000)
        .checkpoint_every(4);
    let (outcome, trace) = record_app(AppKind::Sor, cfg, Scale::Small);
    assert!(outcome.verified);
    let decoded = Trace::decode(&trace.encode()).expect("v5 round-trip");
    assert_eq!(decoded.meta.cfg.faults.crashes(), cfg.faults.crashes());
    assert_eq!(decoded.meta.cfg.checkpoint_every, 4);
    midway_replay::verify_replay(&decoded).expect("a crashed recording must replay bit for bit");
}
