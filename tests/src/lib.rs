//! Placeholder.
