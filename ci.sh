#!/usr/bin/env bash
# Repository CI: formatting, lints, build, full test suite, and a
# record/replay determinism smoke test. Runs fully offline.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (-D warnings)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test"
cargo test --workspace -q

echo "==> cargo doc (-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> trace record/replay determinism smoke (every backend)"
smoke=$(mktemp -d)
trap 'rm -rf "$smoke"' EXIT
for backend in rt vm blast twinall hybrid; do
    cargo run --release -q -p midway-replay --bin trace -- \
        record --app sor --scale small --procs 4 --backend "$backend" \
        --out "$smoke/sor-$backend.mwt"
    cargo run --release -q -p midway-replay --bin trace -- \
        replay "$smoke/sor-$backend.mwt" --check
done

echo "==> fault tolerance smoke (every backend)"
# faultcheck replays the trace twice under the seeded plan (the runs must
# be bit-for-bit identical) and, for sor, demands strict convergence to
# the fault-free final memory and counters.
for backend in rt vm blast twinall hybrid; do
    # 1% loss: real drops, retransmissions, and recovery.
    cargo run --release -q -p midway-replay --bin trace -- \
        faultcheck "$smoke/sor-$backend.mwt" --loss 10000 --fault-seed 7
    # 0% loss with the channel enabled: pure framing overhead must still
    # reproduce the fault-free oracle exactly.
    cargo run --release -q -p midway-replay --bin trace -- \
        faultcheck "$smoke/sor-$backend.mwt" --loss 0 --fault-seed 7
done
cargo run --release -q -p midway-replay --bin trace -- \
    replay "$smoke/sor-rt.mwt" --backend vm >/dev/null
cargo run --release -q -p midway-replay --bin trace -- \
    info "$smoke/sor-rt.mwt" >/dev/null

echo "==> crash recovery smoke (every backend)"
# crashcheck kills a processor a third of the way into the run and
# demands (a) determinism — the crashed replay reruns bit-for-bit — and
# (b) strict convergence: after checkpointed recovery the final memory
# digests and Table 2 counters match the crash-free run exactly.
for backend in rt vm blast twinall hybrid; do
    cargo run --release -q -p midway-replay --bin trace -- \
        crashcheck "$smoke/sor-$backend.mwt" --interval 2
done
# A crash on top of a lossy network: frames lost to the link and to the
# crash window are all repaired by the same retransmission machinery.
cargo run --release -q -p midway-replay --bin trace -- \
    crashcheck "$smoke/sor-rt.mwt" --loss 10000 --fault-seed 7

echo "==> crash sweep smoke"
# One RT cell at small scale: checkpoint-interval pricing end to end
# (premium row + claim row), convergence asserted inside the harness.
cargo run --release -q -p midway-bench --bin crash_sweep -- \
    --smoke --trace "$smoke/traces" --out "$smoke/crash_sweep.json"

echo "==> hostperf smoke"
# The host-performance basket at smoke size: exercises the chunked diff /
# dirtybit-scan / digest hot paths and both backends end to end, and
# emits the wall-clock JSON with the per-layer attribution counters
# (scheduler dispatches/batching, calendar-ring vs heap pops, deque and
# buffer-pool recycling). No baseline comparison at smoke scale.
cargo run --release -q -p midway-bench --bin hostperf -- \
    --smoke --out "$smoke/hostperf.json"

echo "==> hostperf regression gate (vs committed BENCH_hostperf.json)"
# Full-scale basket, one rep, gated against the committed numbers: if
# the geometric-mean speedup over the committed host_secs drops below
# the gate threshold (0.7), the gate exits nonzero. The committed
# numbers are min-of-reps on a quiet host while this is one rep mid-CI,
# and host speed drifts between sessions, so the threshold is set to
# catch structural hot-path regressions (2-5x on event-dense cells)
# rather than measurement noise; it only runs when the committed JSON
# exists.
if [ -f BENCH_hostperf.json ]; then
    cargo run --release -q -p midway-bench --bin hostperf -- \
        --reps 1 --gate BENCH_hostperf.json --out "$smoke/hostperf_gate.json"
fi

echo "==> real-transport loopback smoke"
# sor under RT and VM over actual loopback TCP sockets (one OS thread per
# processor), each run recorded and cross-validated against the simulator
# digest oracle; then the same cells over UDP with 1% injected loss, so
# the reliable channel masks a genuinely lossy socket end to end.
cargo run --release -q -p midway-bench --bin realrun -- \
    --smoke --trace "$smoke/traces" --out "$smoke/realrun.json"
cargo run --release -q -p midway-bench --bin realrun -- \
    --smoke --mode udp --loss 10000 \
    --trace "$smoke/traces" --out "$smoke/realrun-udp.json"

echo "==> scale sweep smoke (64 processors, tree barriers, sharded homes)"
# One 64-processor sor cell per backend (RT + VM) under the scale-out
# configuration — combining-tree barriers (arity 4) plus sharded sync
# homes — with peak-RSS sampling. Verifies the machinery end to end at a
# processor count far beyond the unit tests.
cargo run --release -q -p midway-bench --bin scale_sweep -- \
    --smoke --out "$smoke/scale.json"

echo "==> replay determinism gate over committed traces"
# Every cached trace in results/traces/ must still replay bit-for-bit —
# the end-to-end oracle that host-perf changes cannot have altered any
# simulation result (results/traces/ is gitignored, so this runs on a
# warmed checkout and is a no-op on a fresh one).
if compgen -G "results/traces/*.mwt" >/dev/null; then
    for t in results/traces/*.mwt; do
        cargo run --release -q -p midway-replay --bin trace -- \
            replay "$t" --check >/dev/null
    done
fi

echo "==> service workload smoke (sweep + record/replay)"
# The three service apps (kvstore, socialgraph, taskqueue) at small
# scale under RT, swept across two client counts, plus the saturation
# knee search (binary search on clients/proc to the 2x-latency point);
# every cell self-verifies inside the harness. Then one recorded
# kvstore run must replay bit-for-bit like any batch kernel.
cargo run --release -q -p midway-bench --bin svc_sweep -- \
    --smoke --out "$smoke/svc.json"
cargo run --release -q -p midway-replay --bin trace -- \
    record --app kvstore --scale small --procs 4 --backend rt \
    --out "$smoke/kvstore-rt.mwt"
cargo run --release -q -p midway-replay --bin trace -- \
    replay "$smoke/kvstore-rt.mwt" --check

echo "==> differential fuzz smoke (all six backends + planted mutants)"
# Fixed-seed schedules run on every applicable backend (single-
# processor seeds include the standalone build, so all six are in the
# matrix) and must agree with the schedule's own model: read-back
# checksums, schedule-determined counters, clean checker, bit-exact
# reruns. Then each planted-mutant kind must be caught by the checker
# and shrunk to a minimal reproducer. Failures print the seed and the
# minimized schedule; the bin exits nonzero.
cargo run --release -q -p midway-bench --bin fuzz -- --smoke

echo "==> racecheck smoke"
# Clean apps must report zero findings and every seeded mutant must be
# detected (the harness exits nonzero otherwise)...
cargo run --release -q -p midway-bench --bin racecheck -- \
    --scale small --procs 4 --backend rt --out "$smoke/racecheck.json"
# ...and a trace recorded without the checker must replay bit-for-bit
# with it attached (the off-clock guarantee against a file on disk).
cargo run --release -q -p midway-replay --bin trace -- \
    racecheck "$smoke/sor-rt.mwt"
# Same check against a pre-existing cached trace when one is around
# (results/traces/ is gitignored, so only on a warmed checkout).
if [ -f results/traces/cholesky-small-4p-rt.mwt ]; then
    cargo run --release -q -p midway-replay --bin trace -- \
        racecheck results/traces/cholesky-small-4p-rt.mwt
fi

echo "==> ci.sh: all green"
