//! A dynamic task queue with lock rebinding — the pattern behind the
//! paper's `quicksort` workload.
//!
//! Run with: `cargo run -p midway-examples --bin task_queue`
//!
//! A producer publishes work items; each item's lock is *rebound* to the
//! slice of the shared array the item covers, so acquiring the item's lock
//! ships exactly that slice. Workers square the numbers in their slice.
//! The example shows why rebinding is interesting for write detection:
//! under VM-DSM a rebound lock ships its full bound data without diffing,
//! while RT-DSM rescans dirtybits under the new binding.

use midway_core::{BackendKind, Midway, MidwayConfig, Proc, SystemBuilder};

const ITEMS: usize = 12;
const SLICE: usize = 32;

fn main() {
    for backend in [BackendKind::Rt, BackendKind::Vm] {
        let mut b = SystemBuilder::new();
        let data = b.shared_array::<u64>("data", ITEMS * SLICE, 1);
        // `queue[0]` = published count, `queue[1]` = taken count,
        // `queue[2]` = completed count.
        let queue = b.shared_array::<u64>("queue", 3, 1);
        let qlock = b.lock(vec![queue.full_range()]);
        let item_locks: Vec<_> = (0..ITEMS).map(|_| b.lock(vec![])).collect();
        let spec = b.build();

        let run = Midway::run(MidwayConfig::new(4, backend), &spec, |p: &mut Proc| {
            if p.id() == 0 {
                // Producer: fill each slice, rebind its lock, publish it.
                for (item, item_lock) in item_locks.iter().enumerate() {
                    let range = item * SLICE..(item + 1) * SLICE;
                    p.acquire(*item_lock);
                    p.rebind(*item_lock, vec![data.range(range.clone())]);
                    for i in range {
                        p.write(&data, i, i as u64 + 1);
                    }
                    p.release(*item_lock);
                    p.acquire(qlock);
                    let published = p.read(&queue, 0);
                    p.write(&queue, 0, published + 1);
                    p.release(qlock);
                }
            }
            // Everyone (including the producer) works items to completion.
            let mut mine = 0u64;
            loop {
                p.acquire(qlock);
                let published = p.read(&queue, 0);
                let taken = p.read(&queue, 1);
                let completed = p.read(&queue, 2);
                let item = if taken < published {
                    p.write(&queue, 1, taken + 1);
                    Some(taken as usize)
                } else {
                    None
                };
                p.release(qlock);
                match item {
                    Some(item) => {
                        p.acquire(item_locks[item]);
                        for i in item * SLICE..(item + 1) * SLICE {
                            let v = p.read(&data, i);
                            p.write(&data, i, v * v);
                        }
                        p.release(item_locks[item]);
                        p.acquire(qlock);
                        let c = p.read(&queue, 2);
                        p.write(&queue, 2, c + 1);
                        p.release(qlock);
                        mine += 1;
                    }
                    None if completed == ITEMS as u64 => break,
                    None => p.idle(15_000),
                }
            }
            mine
        })
        .expect("simulation failed");

        println!("== {} ==", run.cfg.backend.label());
        println!("items completed per processor: {:?}", run.results);
        assert_eq!(run.results.iter().sum::<u64>(), ITEMS as u64);
        let fulls: u64 = run.counters.iter().map(|c| c.full_data_sends).sum();
        let data_kb: u64 = run.counters.iter().map(|c| c.data_bytes_sent).sum::<u64>() / 1024;
        println!("full-data sends: {fulls}, data transferred: {data_kb} KB\n");
    }
}
