//! Fine-grained sharing: where software write detection shines.
//!
//! Run with: `cargo run -p midway-examples --bin fine_grain`
//!
//! Processors update single words scattered across a shared table, each
//! protected by a fine-grained lock, then cross-read each other's cells.
//! All the cells fit in one virtual-memory page, so VM-DSM's coherency
//! unit (the page) keeps being faulted, twinned and diffed for four-byte
//! updates, while RT-DSM's word-size cache lines track exactly what moved
//! — the paper's headline argument rendered in ~60 lines.

use midway_core::{BackendKind, Counters, Midway, MidwayConfig, Proc, SystemBuilder};

const CELLS: usize = 64;
const ROUNDS: usize = 30;

fn main() {
    for backend in [BackendKind::Rt, BackendKind::Vm] {
        let mut b = SystemBuilder::new();
        let table = b.shared_array::<u32>("table", CELLS, 1);
        let cell_locks: Vec<_> = (0..CELLS)
            .map(|c| b.lock(vec![table.range(c..c + 1)]))
            .collect();
        let done = b.barrier(vec![]);
        let spec = b.build();

        let run = Midway::run(MidwayConfig::new(4, backend), &spec, |p: &mut Proc| {
            let procs = p.procs();
            let me = p.id();
            let mut sum = 0u64;
            for round in 0..ROUNDS {
                // Update my cells.
                for c in (me..CELLS).step_by(procs) {
                    p.acquire(cell_locks[c]);
                    let v = p.read(&table, c);
                    p.write(&table, c, v + c as u32);
                    p.release(cell_locks[c]);
                }
                // Read a neighbour's cells.
                let neighbour = (me + 1 + round % (procs - 1)) % procs;
                for c in (neighbour..CELLS).step_by(procs) {
                    p.acquire_shared(cell_locks[c]);
                    sum += p.read(&table, c) as u64;
                    p.release_shared(cell_locks[c]);
                }
            }
            p.barrier(done);
            sum
        })
        .expect("simulation failed");

        let avg = Counters::average(&run.counters);
        println!("== {} ==", run.cfg.backend.label());
        println!(
            "simulated time: {:7.2} ms | data {:6.1} KB | dirtybits set {:6} | faults {:5} | pages diffed {:5}",
            run.cfg.cost.cycles_to_millis(run.finish_time.cycles()),
            avg.totals().data_bytes_sent as f64 / 1024.0,
            avg.totals().dirtybits_set,
            avg.totals().write_faults,
            avg.totals().pages_diffed,
        );
        println!();
    }
    println!("The whole table is one 4 KB page: every VM-DSM cross-access pays the");
    println!("fault/twin/diff machinery for a four-byte change, while RT-DSM's");
    println!("word-granularity dirtybits move only the words that changed.");
}
