//! Quickstart: a shared counter and a barrier on the Midway DSM.
//!
//! Run with: `cargo run -p midway-examples --bin quickstart`
//!
//! Four simulated processors increment a lock-protected counter and then
//! meet at a barrier; the example prints the counter, per-processor
//! virtual times and the write-detection counters for both detection
//! systems, so you can see RT-DSM's dirtybit economy against VM-DSM's
//! fault-and-diff machinery on the exact same program.

use midway_core::{BackendKind, Counters, Midway, MidwayConfig, Proc, SystemBuilder};

fn main() {
    for backend in [BackendKind::Rt, BackendKind::Vm] {
        // 1. Declare the shared memory image: every processor sees the
        //    same layout.
        let mut b = SystemBuilder::new();
        let counter = b.shared_array::<u64>("counter", 1, 1);
        let scratch = b.shared_array::<u64>("scratch", 64, 1);
        let lock = b.lock(vec![counter.full_range()]);
        let done = b.barrier(vec![]);
        let spec = b.build();

        // 2. Run one closure per processor.
        let run = Midway::run(MidwayConfig::new(4, backend), &spec, |p: &mut Proc| {
            for i in 0..25 {
                // Entry consistency: acquire the lock bound to the data,
                // and the data is fresh when the acquire returns.
                p.acquire(lock);
                let v = p.read(&counter, 0);
                p.write(&counter, 0, v + 1);
                p.release(lock);
                // Unrelated local work: writes still go through write
                // detection, but nothing is communicated until someone
                // synchronizes on data bound to them.
                p.write(&scratch, (p.id() * 16 + i as usize % 16) % 64, v);
                p.work(10_000);
            }
            p.barrier(done);
            p.acquire(lock);
            let v = p.read(&counter, 0);
            p.release(lock);
            v
        })
        .expect("simulation failed");

        // 3. Inspect the outcome.
        println!("== {} ==", run.cfg.backend.label());
        println!("final counter everywhere: {:?}", run.results);
        assert!(run.results.iter().all(|v| *v == 100));
        let avg = Counters::average(&run.counters);
        println!(
            "execution: {:.2} ms simulated, {} messages",
            run.cfg.cost.cycles_to_millis(run.finish_time.cycles()),
            run.messages
        );
        println!(
            "write detection: {} dirtybits set, {} faults, {} pages diffed",
            avg.totals().dirtybits_set,
            avg.totals().write_faults,
            avg.totals().pages_diffed
        );
        println!(
            "data transferred: {:.1} KB\n",
            avg.totals().data_bytes_sent as f64 / 1024.0
        );
    }
}
