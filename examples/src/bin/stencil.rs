//! A barrier-phased stencil (heat diffusion) — the pattern behind the
//! paper's `sor` workload.
//!
//! Run with: `cargo run -p midway-examples --bin stencil`
//!
//! Each processor owns a stripe of a 1-D rod and keeps its interior in
//! ordinary private memory (the paper's "annotate what is truly shared"
//! discipline). Only the stripe's two edge cells are shared: they are
//! published to arrays bound to the phase barrier, so each barrier ships
//! a handful of doubles no matter how large the rod is.

use midway_core::{BackendKind, Midway, MidwayConfig, Proc, SystemBuilder};

const CELLS: usize = 4_096;
const STEPS: usize = 40;
const PROCS: usize = 4;

fn main() {
    for backend in [BackendKind::Rt, BackendKind::Vm] {
        let mut b = SystemBuilder::new();
        // Two published edge cells per processor.
        let edges = b.shared_array::<f64>("edges", PROCS * 2, 1);
        let partitions: Vec<_> = (0..PROCS)
            .map(|q| vec![edges.range(q * 2..q * 2 + 2)])
            .collect();
        let step_done = b.barrier_partitioned(vec![edges.full_range()], partitions);
        let spec = b.build();

        let run = Midway::run(MidwayConfig::new(PROCS, backend), &spec, |p: &mut Proc| {
            let me = p.id();
            let chunk = CELLS / PROCS;
            // Private stripe: hot in the middle of the rod.
            let mut rod: Vec<f64> = (0..chunk)
                .map(|i| {
                    let global = me * chunk + i;
                    // The hot region ends exactly at the first stripe
                    // boundary, so heat crosses it and the exchanged edge
                    // cells change every step.
                    if (CELLS / PROCS - 64..CELLS / PROCS).contains(&global) {
                        100.0
                    } else {
                        0.0
                    }
                })
                .collect();
            p.write(&edges, me * 2, rod[0]);
            p.write(&edges, me * 2 + 1, rod[chunk - 1]);
            p.barrier(step_done);

            for _ in 0..STEPS {
                let left = if me > 0 {
                    p.read(&edges, (me - 1) * 2 + 1)
                } else {
                    0.0
                };
                let right = if me + 1 < PROCS {
                    p.read(&edges, (me + 1) * 2)
                } else {
                    0.0
                };
                let prev = rod.clone();
                for i in 0..chunk {
                    let l = if i == 0 { left } else { prev[i - 1] };
                    let r = if i == chunk - 1 { right } else { prev[i + 1] };
                    rod[i] = prev[i] + 0.25 * (l - 2.0 * prev[i] + r);
                }
                p.work(chunk as u64 * 12);
                p.write(&edges, me * 2, rod[0]);
                p.write(&edges, me * 2 + 1, rod[chunk - 1]);
                p.barrier(step_done);
            }
            // Position-weighted checksum: sensitive to *where* the heat
            // is, not just how much (heat is conserved by construction).
            rod.iter()
                .enumerate()
                .map(|(i, v)| v * (me * chunk + i) as f64)
                .sum::<f64>()
        })
        .expect("simulation failed");

        let spread: f64 = run.results.iter().sum();
        println!("== {} ==", run.cfg.backend.label());
        println!("heat-position checksum after {STEPS} steps: {spread:.3}");
        println!(
            "simulated time: {:.2} ms, data transferred: {:.1} KB\n",
            run.cfg.cost.cycles_to_millis(run.finish_time.cycles()),
            run.counters.iter().map(|c| c.data_bytes_sent).sum::<u64>() as f64 / 1024.0
        );
    }
}
