//! Placeholder.
